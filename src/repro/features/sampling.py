"""Sample generation and temporal train/validation/test splitting.

Samples are drawn at CE arrival instants (a new CE is the natural trigger
for re-scoring a DIMM; production re-scores every prediction interval, but
between CEs the features — hence the score — barely move).  Per-DIMM caps
keep chatty DIMMs from dominating the set.

The split is *temporal* (train on the earlier part of the campaign, test on
the later part), matching production deployment; validation is carved out
of the training period *by DIMM* so threshold tuning never sees a test
DIMM's samples.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class SamplingParams:
    max_samples_per_dimm: int = 24
    train_fraction: float = 0.6  # campaign time fraction used for training
    validation_dimm_fraction: float = 0.30  # of train DIMMs, for tuning
    min_history_ces: int = 2  # require some history before sampling
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        if not 0.0 <= self.validation_dimm_fraction < 1.0:
            raise ValueError("validation_dimm_fraction must be in [0, 1)")


@dataclass
class SampleSet:
    """A feature matrix with labels and provenance."""

    X: np.ndarray
    y: np.ndarray
    times: np.ndarray
    dimm_ids: np.ndarray  # dtype=object
    feature_names: list[str]
    feature_groups: dict[str, list[int]] = field(default_factory=dict)
    platform: str = ""

    def __post_init__(self) -> None:
        n = self.X.shape[0]
        if not (len(self.y) == len(self.times) == len(self.dimm_ids) == n):
            raise ValueError("inconsistent sample-set lengths")
        if self.X.shape[1] != len(self.feature_names):
            raise ValueError("feature_names do not match X columns")

    def __len__(self) -> int:
        return int(self.X.shape[0])

    @property
    def positive_rate(self) -> float:
        return float(self.y.mean()) if len(self) else 0.0

    def subset(self, mask: np.ndarray) -> "SampleSet":
        return SampleSet(
            X=self.X[mask],
            y=self.y[mask],
            times=self.times[mask],
            dimm_ids=self.dimm_ids[mask],
            feature_names=self.feature_names,
            feature_groups=self.feature_groups,
            platform=self.platform,
        )

    def drop_feature_groups(self, groups: tuple[str, ...]) -> "SampleSet":
        """Ablation helper: zero out whole feature groups.

        Columns are zeroed rather than removed so that feature indices stay
        stable for models already referring to named columns.
        """
        X = self.X.copy()
        for group in groups:
            for index in self.feature_groups.get(group, []):
                X[:, index] = 0.0
        return SampleSet(
            X=X,
            y=self.y,
            times=self.times,
            dimm_ids=self.dimm_ids,
            feature_names=self.feature_names,
            feature_groups=self.feature_groups,
            platform=self.platform,
        )


def concat_sample_sets(sets: list[SampleSet], platform: str = "") -> SampleSet:
    """Row-concatenate sample sets sharing one feature schema.

    This is how the pooled-training and mixed-fleet scenarios assemble a
    union fleet from per-platform sample sets; the inputs must agree on
    ``feature_names`` (column order included) or the matrices would not be
    comparable.
    """
    if not sets:
        raise ValueError("concat_sample_sets needs at least one sample set")
    names = sets[0].feature_names
    for other in sets[1:]:
        if other.feature_names != names:
            raise ValueError(
                "cannot concatenate sample sets with different feature schemas"
            )
    return SampleSet(
        X=np.vstack([s.X for s in sets]),
        y=np.concatenate([s.y for s in sets]),
        times=np.concatenate([s.times for s in sets]),
        dimm_ids=np.concatenate([s.dimm_ids for s in sets]),
        feature_names=names,
        feature_groups=sets[0].feature_groups,
        platform=platform,
    )


@dataclass
class SplitSampleSets:
    train: SampleSet
    validation: SampleSet
    test: SampleSet


def _dimm_in_validation(dimm_id: str, fraction: float, seed: int) -> bool:
    digest = hashlib.sha256(f"{seed}:{dimm_id}".encode()).digest()
    return (int.from_bytes(digest[:4], "little") / 2**32) < fraction


def temporal_split(
    samples: SampleSet,
    campaign_hours: float,
    params: SamplingParams,
) -> SplitSampleSets:
    """Train/validation/test split as described in the module docstring."""
    split_hour = params.train_fraction * campaign_hours
    in_train_period = samples.times < split_hour
    # dtype=bool keeps an EMPTY sample set (e.g. a campaign shorter than the
    # labeling horizon) flowing through as empty splits instead of tripping
    # ufunc type errors on a float64 empty array.
    in_validation = np.array(
        [
            _dimm_in_validation(d, params.validation_dimm_fraction, params.seed)
            for d in samples.dimm_ids
        ],
        dtype=bool,
    )
    train_mask = in_train_period & ~in_validation
    val_mask = in_train_period & in_validation
    test_mask = ~in_train_period
    return SplitSampleSets(
        train=samples.subset(train_mask),
        validation=samples.subset(val_mask),
        test=samples.subset(test_mask),
    )


def choose_sample_times(
    ce_times: np.ndarray,
    max_samples: int,
    min_history_ces: int,
    rng: np.random.Generator | None,
    jitter: int | None = None,
) -> np.ndarray:
    """Sampling instants for one DIMM: CE arrivals, thinned to the cap.

    The thinning offset is normally drawn from ``rng``; the sharded fleet
    build instead pre-draws every DIMM's offset in the canonical (sorted
    DIMM id) order and passes it as ``jitter``, so parallel shards stay
    bit-for-bit identical to the serial path.
    """
    if ce_times.size < min_history_ces:
        return np.empty(0)
    eligible = ce_times[min_history_ces - 1 :]
    bound = _jitter_bound(ce_times.size, max_samples, min_history_ces)
    if bound is None:
        return eligible
    # Deterministic even thinning plus one random offset keeps both early
    # and late samples while avoiding aliasing with burst structure.
    indices = np.linspace(0, eligible.size - 1, max_samples).astype(int)
    if jitter is None:
        jitter = int(rng.integers(0, bound))
    indices = np.clip(indices + jitter, 0, eligible.size - 1)
    return eligible[np.unique(indices)]


def _jitter_bound(
    ce_count: int, max_samples: int, min_history_ces: int
) -> int | None:
    """Exclusive jitter range when a DIMM's samples need thinning, else None.

    The single source of the eligibility arithmetic: both the in-loop
    draw (:func:`choose_sample_times`) and the pre-draw
    (:func:`thinning_jitters`) must consume the rng identically or
    sharded builds lose bit parity with the serial path.
    """
    eligible = ce_count - (min_history_ces - 1)
    if ce_count < min_history_ces or eligible <= max_samples:
        return None
    return max(1, eligible // max_samples)


def thinning_jitters(
    ce_counts: np.ndarray,
    max_samples: int,
    min_history_ces: int,
    rng: np.random.Generator,
) -> list[int | None]:
    """Pre-draw each DIMM's :func:`choose_sample_times` offset.

    ``ce_counts[i]`` is DIMM ``i``'s CE count in the canonical order.  The
    rng is consumed exactly as the serial per-DIMM loop consumes it (one
    draw per over-cap DIMM, in order), which is what keeps sharded builds
    reproducible.
    """
    jitters: list[int | None] = []
    for count in ce_counts:
        bound = _jitter_bound(int(count), max_samples, min_history_ces)
        jitters.append(None if bound is None else int(rng.integers(0, bound)))
    return jitters


def aggregate_by_dimm(
    samples: SampleSet, scores: np.ndarray, top_k: int = 3
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """DIMM-level view: top-k-mean score and max label per DIMM.

    The paper's TP/FP/FN/VIRR accounting is per failing unit (a DIMM/server
    that is or is not acted upon), so Table II metrics aggregate sample
    scores to DIMM granularity.  Pooling uses the mean of the ``top_k``
    highest sample scores — a single-sample spike does not flag a DIMM, but
    a sustained high score does.

    Returns ``(dimm_ids, y_dimm, score_dimm)`` sorted by dimm id.
    """
    scores = np.asarray(scores, dtype=float)
    if scores.shape[0] != len(samples):
        raise ValueError("scores do not match samples")
    if scores.size == 0:
        return (
            np.empty(0, dtype=object),
            np.empty(0, dtype=int),
            np.empty(0, dtype=float),
        )
    ids, groups = np.unique(samples.dimm_ids, return_inverse=True)
    y = np.zeros(ids.size, dtype=int)
    np.maximum.at(y, groups, samples.y.astype(int))

    # Rank each DIMM's samples by descending score (stable, like the
    # per-DIMM sorted() it replaces) and pool the top-k mean per group.
    order = np.lexsort((-scores, groups))
    sorted_groups = groups[order]
    starts = np.flatnonzero(
        np.concatenate(([True], sorted_groups[1:] != sorted_groups[:-1]))
    )
    sizes = np.diff(np.append(starts, sorted_groups.size))
    rank = np.arange(sorted_groups.size) - np.repeat(starts, sizes)
    take = rank < top_k
    pooled_sum = np.zeros(ids.size)
    np.add.at(pooled_sum, sorted_groups[take], scores[order][take])
    pooled = pooled_sum / np.bincount(sorted_groups[take], minlength=ids.size)
    return ids.astype(object), y, pooled
