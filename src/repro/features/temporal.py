"""Temporal CE features (counts, rates, recency, storminess)."""

from __future__ import annotations

import numpy as np

from repro.features.windows import SUB_WINDOWS_HOURS, DimmHistory


class TemporalExtractor:
    """CE dynamics over the observation window ending at sample time t."""

    group = "temporal"

    def __init__(self, observation_hours: float = 120.0):
        self.observation_hours = observation_hours

    def names(self) -> list[str]:
        names = [f"temporal_ce_count_{_window_tag(w)}" for w in SUB_WINDOWS_HOURS]
        names += [
            "temporal_ce_rate_per_hour",
            "temporal_log_ce_count",
            "temporal_hours_since_first_ce",
            "temporal_hours_since_last_ce",
            "temporal_mean_interarrival",
            "temporal_min_interarrival",
            "temporal_max_ces_in_hour_1d",
            "temporal_storm_count_5d",
            "temporal_storm_count_total",
            "temporal_repair_count_5d",
            "temporal_ce_acceleration",
        ]
        return names

    def compute(self, history: DimmHistory, t: float) -> list[float]:
        observation = self.observation_hours
        counts = [
            float(history.count_in(t - w, t + 1e-9)) for w in SUB_WINDOWS_HOURS
        ]
        count_5d = history.count_in(t - observation, t + 1e-9)
        sl = history.window(t - observation, t + 1e-9)
        times = history.times[sl]

        hours_since_first = t - history.first_ce_hour if len(history) else observation
        hours_since_last = t - float(times[-1]) if times.size else observation

        if times.size >= 2:
            gaps = np.diff(times)
            mean_gap = float(gaps.mean())
            min_gap = float(gaps.min())
        else:
            mean_gap = observation
            min_gap = observation

        # Burstiness: max CEs in any single hour of the last day.
        day_slice = history.window(t - 24.0, t + 1e-9)
        day_times = history.times[day_slice]
        if day_times.size:
            buckets = np.floor(day_times - (t - 24.0)).astype(int)
            max_hourly = float(np.bincount(buckets, minlength=24).max())
        else:
            max_hourly = 0.0

        # Acceleration: recent-day rate vs window-average rate.
        rate_5d = count_5d / observation
        rate_1d = history.count_in(t - 24.0, t + 1e-9) / 24.0
        acceleration = rate_1d / rate_5d if rate_5d > 0 else 0.0

        return counts + [
            rate_5d,
            float(np.log1p(count_5d)),
            float(hours_since_first),
            float(hours_since_last),
            mean_gap,
            min_gap,
            max_hourly,
            float(history.storms_in(t - observation, t + 1e-9)),
            float(history.storms_in(0.0, t + 1e-9)),
            float(history.repairs_in(t - observation, t + 1e-9)),
            acceleration,
        ]


def _window_tag(hours: float) -> str:
    if hours < 24.0:
        return f"{int(hours)}h"
    return f"{int(hours / 24.0)}d"
