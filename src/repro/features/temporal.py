"""Temporal CE features (counts, rates, recency, storminess)."""

from __future__ import annotations

import numpy as np

from repro.features.windows import (
    EPS,
    SUB_WINDOWS_HOURS,
    BatchWindows,
    DimmHistory,
)


class TemporalExtractor:
    """CE dynamics over the observation window ending at sample time t."""

    group = "temporal"

    def __init__(self, observation_hours: float = 120.0):
        self.observation_hours = observation_hours

    def names(self) -> list[str]:
        names = [f"temporal_ce_count_{_window_tag(w)}" for w in SUB_WINDOWS_HOURS]
        names += [
            "temporal_ce_rate_per_hour",
            "temporal_log_ce_count",
            "temporal_hours_since_first_ce",
            "temporal_hours_since_last_ce",
            "temporal_mean_interarrival",
            "temporal_min_interarrival",
            "temporal_max_ces_in_hour_1d",
            "temporal_storm_count_5d",
            "temporal_storm_count_total",
            "temporal_repair_count_5d",
            "temporal_ce_acceleration",
        ]
        return names

    def compute(self, history: DimmHistory, t: float) -> list[float]:
        observation = self.observation_hours
        counts = [
            float(history.count_in(t - w, t + EPS)) for w in SUB_WINDOWS_HOURS
        ]
        count_5d = history.count_in(t - observation, t + EPS)
        sl = history.window(t - observation, t + EPS)
        times = history.times[sl]

        hours_since_first = t - history.first_ce_hour if len(history) else observation
        hours_since_last = t - float(times[-1]) if times.size else observation

        if times.size >= 2:
            # Telescoped mean keeps the arithmetic identical to the batch
            # path's (last - first) / (n - 1) form.
            mean_gap = float((times[-1] - times[0]) / (times.size - 1))
            min_gap = float(np.diff(times).min())
        else:
            mean_gap = observation
            min_gap = observation

        # Burstiness: max CEs in any single hour of the last day.
        day_slice = history.window(t - 24.0, t + EPS)
        day_times = history.times[day_slice]
        if day_times.size:
            buckets = np.floor(day_times - (t - 24.0)).astype(int)
            max_hourly = float(np.bincount(buckets, minlength=24).max())
        else:
            max_hourly = 0.0

        # Acceleration: recent-day rate vs window-average rate.
        rate_5d = count_5d / observation
        rate_1d = history.count_in(t - 24.0, t + EPS) / 24.0
        acceleration = rate_1d / rate_5d if rate_5d > 0 else 0.0

        return counts + [
            rate_5d,
            float(np.log1p(count_5d)),
            float(hours_since_first),
            float(hours_since_last),
            mean_gap,
            min_gap,
            max_hourly,
            float(history.storms_in(t - observation, t + EPS)),
            float(history.storms_in(0.0, t + EPS)),
            float(history.repairs_in(t - observation, t + EPS)),
            acceleration,
        ]

    def compute_batch(
        self,
        history: DimmHistory,
        ts: np.ndarray,
        windows: BatchWindows | None = None,
    ) -> np.ndarray:
        """Vectorized :meth:`compute` for a batch of sample times."""
        if windows is None:
            windows = BatchWindows(history, ts)
        ts = windows.ts
        n = ts.size
        observation = self.observation_hours
        times = history.times
        windows.prefetch(SUB_WINDOWS_HOURS + (observation, 24.0))
        hi = windows.hi
        lo_obs = windows.lo(observation)
        lo_day = windows.lo(24.0)

        out = np.empty((n, len(self.names())), dtype=float)
        for j, w in enumerate(SUB_WINDOWS_HOURS):
            out[:, j] = windows.counts(w)
        base = len(SUB_WINDOWS_HOURS)

        count_5d = (hi - lo_obs).astype(float)
        sizes = hi - lo_obs
        nonempty = sizes > 0

        hours_since_first = windows.since_first(observation)
        if times.size:
            last_time = times[np.maximum(hi - 1, 0)]
            first_time = times[np.minimum(lo_obs, times.size - 1)]
        else:
            last_time = np.zeros(n)
            first_time = np.zeros(n)
        hours_since_last = np.where(nonempty, ts - last_time, observation)

        multi = sizes >= 2
        span = last_time - first_time
        mean_gap = np.where(
            multi, span / np.maximum(sizes - 1, 1), observation
        )
        # min over gaps[lo : hi - 1] == min of diff(times[lo:hi]); the
        # interleaved-pairs reduceat answers every window in one C call
        # (odd positions cover the unwanted inter-window stretches).  The
        # inf sentinel keeps every index legal without clipping away the
        # final gap; windows with fewer than two CEs are masked after.
        gaps = windows.gap_array()
        bounds = np.empty(2 * n, dtype=np.int64)
        bounds[0::2] = np.minimum(lo_obs, gaps.size - 1)
        bounds[1::2] = np.minimum(
            np.maximum(hi - 1, bounds[0::2]), gaps.size - 1
        )
        min_gap = np.where(
            multi, np.minimum.reduceat(gaps, bounds)[0::2], observation
        )

        max_hourly = _max_hourly_batch(times, ts, windows.pairs(24.0))

        rate_5d = count_5d / observation
        rate_1d = (hi - lo_day) / 24.0
        acceleration = np.divide(
            rate_1d, rate_5d, out=np.zeros(n), where=rate_5d > 0
        )

        out[:, base + 0] = rate_5d
        out[:, base + 1] = np.log1p(count_5d)
        out[:, base + 2] = hours_since_first
        out[:, base + 3] = hours_since_last
        out[:, base + 4] = mean_gap
        out[:, base + 5] = min_gap
        out[:, base + 6] = max_hourly
        # Storm / repair event counts resolve through the windows object so
        # the same code serves per-DIMM (plain searchsorted) and fleet
        # (segment-aware) extraction.
        storm_5d, storm_total = windows.storm_counts(observation)
        out[:, base + 7] = storm_5d
        out[:, base + 8] = storm_total
        out[:, base + 9] = windows.repair_counts(observation)
        out[:, base + 10] = acceleration
        return out


def _max_hourly_batch(
    times: np.ndarray,
    ts: np.ndarray,
    day_pairs: tuple[np.ndarray, np.ndarray],
) -> np.ndarray:
    """Max CEs in any single hour of each sample's trailing day.

    Uses the same ``floor(time - (t - 24))`` bucketisation as the
    per-sample path over the flattened (sample, CE) pairs; one dense
    (sample, hour-bucket) histogram yields every sample's answer.
    """
    sid, idx = day_pairs
    if sid.size == 0:
        return np.zeros(ts.size)
    buckets = np.floor(times[idx] - (ts[sid] - 24.0)).astype(np.int64)
    histogram = np.bincount(
        sid * 25 + buckets, minlength=ts.size * 25  # bucket range is [0, 24]
    ).reshape(ts.size, 25)
    return histogram.max(axis=1).astype(float)


def _window_tag(hours: float) -> str:
    if hours < 24.0:
        return f"{int(hours)}h"
    return f"{int(hours / 24.0)}d"
