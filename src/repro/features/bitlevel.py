"""Bit-level error features: DQ/beat counts, intervals and risky patterns.

These encode the Section V / Figure 5 analysis as model features — the
distribution of error bits across DQs and beats, including the two
platform-risky signatures (2 DQs with a 4-beat interval; whole-chip-wide
patterns) and multi-device bursts.
"""

from __future__ import annotations

import numpy as np

from repro.features.windows import EPS, BatchWindows, DimmHistory


class BitLevelExtractor:
    group = "bitlevel"

    def __init__(self, observation_hours: float = 120.0):
        self.observation_hours = observation_hours

    def names(self) -> list[str]:
        return [
            "bit_max_dq_count",
            "bit_mode_dq_count",
            "bit_max_beat_count",
            "bit_mode_beat_count",
            "bit_max_dq_interval",
            "bit_max_beat_interval",
            "bit_mode_beat_interval",
            "bit_risky_2dq_interval4_count",
            "bit_whole_chip_count",
            "bit_wide_dq_count",
            "bit_multi_device_ce_count",
            "bit_mean_error_bits",
            "bit_max_error_bits",
        ]

    def compute(self, history: DimmHistory, t: float) -> list[float]:
        sl = history.window(t - self.observation_hours, t + EPS)
        dq_count = history.dq_count[sl]
        beat_count = history.beat_count[sl]
        dq_interval = history.dq_interval[sl]
        beat_interval = history.beat_interval[sl]
        n_devices = history.n_devices[sl]
        error_bits = history.error_bits[sl]

        if dq_count.size == 0:
            return [0.0] * len(self.names())

        risky_stride4 = float(np.sum((dq_count == 2) & (beat_interval == 4)))
        whole_chip = float(np.sum((dq_count == 4) & (beat_count >= 5)))
        wide_dq = float(np.sum(dq_count >= 3))

        return [
            float(dq_count.max()),
            _mode(dq_count),
            float(beat_count.max()),
            _mode(beat_count),
            float(dq_interval.max()),
            float(beat_interval.max()),
            _mode(beat_interval),
            risky_stride4,
            whole_chip,
            wide_dq,
            float(np.sum(n_devices >= 2)),
            float(error_bits.mean()),
            float(error_bits.max()),
        ]

    def compute_batch(
        self,
        history: DimmHistory,
        ts: np.ndarray,
        windows: BatchWindows | None = None,
    ) -> np.ndarray:
        """Vectorized :meth:`compute` for a batch of sample times.

        The bit-level columns are tiny non-negative integers, so each
        window's histogram is one dense ``bincount`` over the flattened
        (sample, CE) pairs — max and mode both fall out of it — and the
        conditional counts are weighted bincounts over the same pairs.
        """
        if windows is None:
            windows = BatchWindows(history, ts)
        n = windows.ts.size
        out = np.zeros((n, len(self.names())), dtype=float)
        sizes = windows.counts(self.observation_hours)
        nonempty = sizes > 0
        if not nonempty.any():
            return out
        sid, idx = windows.pairs(self.observation_hours)

        # Gather each column to pair level once; the histogram and every
        # conditional count reuse the same gathered arrays.
        dq = history.dq_count[idx]
        beats = history.beat_count[idx]
        beat_iv = history.beat_interval[idx]
        err = history.error_bits[idx]

        maxima, modes = _max_and_mode(
            sid,
            (dq, beats, history.dq_interval[idx], beat_iv, err),
            n,
        )
        out[:, 0], out[:, 1] = maxima[0], modes[0]
        out[:, 2], out[:, 3] = maxima[1], modes[1]
        out[:, 4] = maxima[2]
        out[:, 5], out[:, 6] = maxima[3], modes[3]
        out[:, 12] = maxima[4]

        def window_sum(values: np.ndarray) -> np.ndarray:
            return np.bincount(sid, weights=values, minlength=n)

        out[:, 7] = window_sum((dq == 2) & (beat_iv == 4))
        out[:, 8] = window_sum((dq == 4) & (beats >= 5))
        out[:, 9] = window_sum(dq >= 3)
        out[:, 10] = window_sum(history.n_devices[idx] >= 2)
        # Error-bit counts are integer-valued, so the weighted-bincount sum
        # is exact and the mean matches the per-sample path bit-for-bit.
        out[:, 11] = np.divide(
            window_sum(err),
            sizes,
            out=np.zeros(n),
            where=nonempty,
        )

        out[~nonempty] = 0.0
        return out


def _mode(values: np.ndarray) -> float:
    """Most frequent value; ties break toward the larger value."""
    unique, counts = np.unique(values, return_counts=True)
    best = np.flatnonzero(counts == counts.max())
    return float(unique[best].max())


def _max_and_mode(
    sid: np.ndarray, value_columns: tuple[np.ndarray, ...], n: int
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Per-window max and mode (ties toward the larger value), per column.

    Every column holds small non-negative integers stored as floats, so one
    fused dense (sample, value) histogram — all columns side by side in a
    single ``bincount`` — answers both statistics for all of them.  Rows of
    empty windows report garbage; callers zero them out wholesale.
    """
    codes = [column.astype(np.int64) for column in value_columns]
    cardinalities = [
        int(column.max()) + 1 if column.size else 1 for column in codes
    ]
    total = sum(cardinalities)
    base = sid * total
    fused = np.empty(len(codes) * sid.size, dtype=np.int64)
    offset = 0
    offsets = []
    for j, column in enumerate(codes):
        offsets.append(offset)
        fused[j * sid.size : (j + 1) * sid.size] = base + offset + column
        offset += cardinalities[j]
    histogram = np.bincount(fused, minlength=n * total).reshape(n, total)

    maxima, modes = [], []
    for offset, cardinality in zip(offsets, cardinalities):
        counts = histogram[:, offset : offset + cardinality][:, ::-1]
        maxima.append((cardinality - 1 - np.argmax(counts > 0, axis=1)).astype(float))
        modes.append((cardinality - 1 - np.argmax(counts, axis=1)).astype(float))
    return maxima, modes
