"""Bit-level error features: DQ/beat counts, intervals and risky patterns.

These encode the Section V / Figure 5 analysis as model features — the
distribution of error bits across DQs and beats, including the two
platform-risky signatures (2 DQs with a 4-beat interval; whole-chip-wide
patterns) and multi-device bursts.
"""

from __future__ import annotations

import numpy as np

from repro.features.windows import DimmHistory


class BitLevelExtractor:
    group = "bitlevel"

    def __init__(self, observation_hours: float = 120.0):
        self.observation_hours = observation_hours

    def names(self) -> list[str]:
        return [
            "bit_max_dq_count",
            "bit_mode_dq_count",
            "bit_max_beat_count",
            "bit_mode_beat_count",
            "bit_max_dq_interval",
            "bit_max_beat_interval",
            "bit_mode_beat_interval",
            "bit_risky_2dq_interval4_count",
            "bit_whole_chip_count",
            "bit_wide_dq_count",
            "bit_multi_device_ce_count",
            "bit_mean_error_bits",
            "bit_max_error_bits",
        ]

    def compute(self, history: DimmHistory, t: float) -> list[float]:
        sl = history.window(t - self.observation_hours, t + 1e-9)
        dq_count = history.dq_count[sl]
        beat_count = history.beat_count[sl]
        dq_interval = history.dq_interval[sl]
        beat_interval = history.beat_interval[sl]
        n_devices = history.n_devices[sl]
        error_bits = history.error_bits[sl]

        if dq_count.size == 0:
            return [0.0] * len(self.names())

        risky_stride4 = float(np.sum((dq_count == 2) & (beat_interval == 4)))
        whole_chip = float(np.sum((dq_count == 4) & (beat_count >= 5)))
        wide_dq = float(np.sum(dq_count >= 3))

        return [
            float(dq_count.max()),
            _mode(dq_count),
            float(beat_count.max()),
            _mode(beat_count),
            float(dq_interval.max()),
            float(beat_interval.max()),
            _mode(beat_interval),
            risky_stride4,
            whole_chip,
            wide_dq,
            float(np.sum(n_devices >= 2)),
            float(error_bits.mean()),
            float(error_bits.max()),
        ]


def _mode(values: np.ndarray) -> float:
    """Most frequent value; ties break toward the larger value."""
    unique, counts = np.unique(values, return_counts=True)
    best = np.flatnonzero(counts == counts.max())
    return float(unique[best].max())
