"""Spatial DRAM-hierarchy features (paper Section VI: "number of faults ...
within different time intervals", fault-mode flags from the Section V
analysis)."""

from __future__ import annotations

import numpy as np

from repro.features.windows import DimmHistory


class SpatialExtractor:
    """Distribution of CEs across the DRAM hierarchy in the window."""

    group = "spatial"

    def __init__(
        self,
        observation_hours: float = 120.0,
        cell_threshold: int = 2,
        line_threshold: int = 3,
        min_distinct: int = 2,
    ):
        self.observation_hours = observation_hours
        self.cell_threshold = cell_threshold
        self.line_threshold = line_threshold
        self.min_distinct = min_distinct

    def names(self) -> list[str]:
        return [
            "spatial_distinct_rows",
            "spatial_distinct_columns",
            "spatial_distinct_banks",
            "spatial_distinct_devices",
            "spatial_max_ces_one_cell",
            "spatial_max_ces_one_row",
            "spatial_max_ces_one_column",
            "spatial_cell_fault",
            "spatial_row_fault",
            "spatial_column_fault",
            "spatial_bank_fault",
            "spatial_multi_device_fault",
        ]

    def compute(self, history: DimmHistory, t: float) -> list[float]:
        sl = history.window(t - self.observation_hours, t + 1e-9)
        rows = history.rows[sl]
        columns = history.columns[sl]
        banks = history.banks[sl]
        devices = history.devices[sl]
        n_devices = history.n_devices[sl]

        if rows.size == 0:
            return [0.0] * 7 + [0.0] * 5

        # Composite keys for cells / rows / columns within (device, bank).
        cell_keys = _compose(devices, banks, rows, columns)
        row_keys = _compose(devices, banks, rows)
        column_keys = _compose(devices, banks, columns)

        max_cell = _max_group_count(cell_keys)
        row_unique, row_counts = np.unique(row_keys, return_counts=True)
        column_unique, column_counts = np.unique(column_keys, return_counts=True)

        has_cell = max_cell >= self.cell_threshold

        # A row fault needs enough CEs on one row across >= min_distinct
        # columns (and symmetrically for columns).
        has_row = False
        faulty_row_banks: set[int] = set()
        for key, count in zip(row_unique, row_counts):
            if count < self.line_threshold:
                continue
            mask = row_keys == key
            if np.unique(columns[mask]).size >= self.min_distinct:
                has_row = True
                faulty_row_banks.add(int(_compose(devices[mask][:1], banks[mask][:1])[0]))
        has_column = False
        faulty_column_banks: set[int] = set()
        for key, count in zip(column_unique, column_counts):
            if count < self.line_threshold:
                continue
            mask = column_keys == key
            if np.unique(rows[mask]).size >= self.min_distinct:
                has_column = True
                faulty_column_banks.add(
                    int(_compose(devices[mask][:1], banks[mask][:1])[0])
                )
        has_bank = bool(faulty_row_banks & faulty_column_banks)
        multi_device = bool((n_devices >= 2).any())

        return [
            float(np.unique(row_keys).size),
            float(np.unique(column_keys).size),
            float(np.unique(_compose(devices, banks)).size),
            float(np.unique(devices).size),
            float(max_cell),
            float(row_counts.max()),
            float(column_counts.max()),
            float(has_cell),
            float(has_row),
            float(has_column),
            float(has_bank),
            float(multi_device),
        ]


def _compose(*arrays: np.ndarray) -> np.ndarray:
    """Pack coordinate arrays into single integer keys."""
    key = arrays[0].astype(np.int64)
    for array in arrays[1:]:
        key = key * 1_048_576 + array.astype(np.int64)  # 2^20 per level
    return key


def _max_group_count(keys: np.ndarray) -> int:
    if keys.size == 0:
        return 0
    _, counts = np.unique(keys, return_counts=True)
    return int(counts.max())
