"""Spatial DRAM-hierarchy features (paper Section VI: "number of faults ...
within different time intervals", fault-mode flags from the Section V
analysis)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.features.windows import EPS, BatchWindows, DimmHistory


class SpatialExtractor:
    """Distribution of CEs across the DRAM hierarchy in the window."""

    group = "spatial"

    def __init__(
        self,
        observation_hours: float = 120.0,
        cell_threshold: int = 2,
        line_threshold: int = 3,
        min_distinct: int = 2,
    ):
        self.observation_hours = observation_hours
        self.cell_threshold = cell_threshold
        self.line_threshold = line_threshold
        self.min_distinct = min_distinct

    def names(self) -> list[str]:
        return [
            "spatial_distinct_rows",
            "spatial_distinct_columns",
            "spatial_distinct_banks",
            "spatial_distinct_devices",
            "spatial_max_ces_one_cell",
            "spatial_max_ces_one_row",
            "spatial_max_ces_one_column",
            "spatial_cell_fault",
            "spatial_row_fault",
            "spatial_column_fault",
            "spatial_bank_fault",
            "spatial_multi_device_fault",
        ]

    def compute(self, history: DimmHistory, t: float) -> list[float]:
        sl = history.window(t - self.observation_hours, t + EPS)
        rows = history.rows[sl]
        columns = history.columns[sl]
        banks = history.banks[sl]
        devices = history.devices[sl]
        n_devices = history.n_devices[sl]

        if rows.size == 0:
            return [0.0] * 7 + [0.0] * 5

        # Composite keys for cells / rows / columns within (device, bank).
        cell_keys = _compose(devices, banks, rows, columns)
        row_keys = _compose(devices, banks, rows)
        column_keys = _compose(devices, banks, columns)

        max_cell = _max_group_count(cell_keys)
        row_unique, row_counts = np.unique(row_keys, return_counts=True)
        column_unique, column_counts = np.unique(column_keys, return_counts=True)

        has_cell = max_cell >= self.cell_threshold

        # A row fault needs enough CEs on one row across >= min_distinct
        # columns (and symmetrically for columns).
        has_row = False
        faulty_row_banks: set[int] = set()
        for key, count in zip(row_unique, row_counts):
            if count < self.line_threshold:
                continue
            mask = row_keys == key
            if np.unique(columns[mask]).size >= self.min_distinct:
                has_row = True
                faulty_row_banks.add(int(_compose(devices[mask][:1], banks[mask][:1])[0]))
        has_column = False
        faulty_column_banks: set[int] = set()
        for key, count in zip(column_unique, column_counts):
            if count < self.line_threshold:
                continue
            mask = column_keys == key
            if np.unique(rows[mask]).size >= self.min_distinct:
                has_column = True
                faulty_column_banks.add(
                    int(_compose(devices[mask][:1], banks[mask][:1])[0])
                )
        has_bank = bool(faulty_row_banks & faulty_column_banks)
        multi_device = bool((n_devices >= 2).any())

        return [
            float(np.unique(row_keys).size),
            float(np.unique(column_keys).size),
            float(np.unique(_compose(devices, banks)).size),
            float(np.unique(devices).size),
            float(max_cell),
            float(row_counts.max()),
            float(column_counts.max()),
            float(has_cell),
            float(has_row),
            float(has_column),
            float(has_bank),
            float(multi_device),
        ]


    def compute_batch(
        self,
        history: DimmHistory,
        ts: np.ndarray,
        windows: BatchWindows | None = None,
    ) -> np.ndarray:
        """Vectorized :meth:`compute` for a batch of sample times.

        Windows are flattened into (sample, CE) pairs — overlapping windows
        duplicate members, but every group statistic then reduces to sorted
        run-length segments, with no per-sample Python loops.
        """
        if windows is None:
            windows = BatchWindows(history, ts)
        n = windows.ts.size
        out = np.zeros((n, len(self.names())), dtype=float)
        lo = windows.lo(self.observation_hours)
        hi = windows.hi
        sid, idx = windows.pairs(self.observation_hours)
        if sid.size == 0:
            return out

        rows = history.rows[idx]
        columns = history.columns[idx]
        banks = history.banks[idx]
        devices = history.devices[idx]

        # Incremental composition (same keys _compose builds, one multiply
        # per level instead of re-deriving every prefix).
        bank_keys = devices * 1_048_576 + banks
        row_keys = bank_keys * 1_048_576 + rows
        column_keys = bank_keys * 1_048_576 + columns
        cell_keys = row_keys * 1_048_576 + columns

        # One lexsort per hierarchy side: the row-side order (sid, row_key,
        # column) is simultaneously grouped by bank and device (three-level
        # compose keys are wrap-free, so the prefix order is preserved),
        # yielding all the distinct counts without separate sorts.
        row_side = _line_side(
            sid, row_keys, columns, bank_keys, devices,
            self.line_threshold, self.min_distinct, n,
        )
        column_side = _line_side(
            sid, column_keys, rows, bank_keys, None,
            self.line_threshold, self.min_distinct, n,
        )
        max_cell = _max_group_per_sample(sid, cell_keys, n)

        out[:, 0] = row_side.distinct_lines
        out[:, 1] = column_side.distinct_lines
        out[:, 2] = row_side.distinct_banks
        out[:, 3] = row_side.distinct_devices
        out[:, 4] = max_cell
        out[:, 5] = row_side.max_line
        out[:, 6] = column_side.max_line
        out[:, 7] = (max_cell >= self.cell_threshold).astype(float)
        out[:, 8] = row_side.has_fault
        out[:, 9] = column_side.has_fault
        # Bank fault: some (device, bank) hosts both a row and a column fault.
        if row_side.fault_pairs.size and column_side.fault_pairs.size:
            shared = np.intersect1d(
                row_side.fault_pairs, column_side.fault_pairs
            )
            out[shared >> 32, 10] = 1.0

        multi_cum = windows.multi_device_prefix()
        out[:, 11] = ((multi_cum[hi] - multi_cum[lo]) > 0).astype(float)
        return out


def _compose(*arrays: np.ndarray) -> np.ndarray:
    """Pack coordinate arrays into single integer keys."""
    key = arrays[0].astype(np.int64)
    for array in arrays[1:]:
        key = key * 1_048_576 + array.astype(np.int64)  # 2^20 per level
    return key


def _max_group_count(keys: np.ndarray) -> int:
    if keys.size == 0:
        return 0
    _, counts = np.unique(keys, return_counts=True)
    return int(counts.max())


def _segment_starts(sid: np.ndarray, keys: np.ndarray) -> np.ndarray:
    """Boolean mask of (sample, key) group starts in lexsorted order."""
    starts = np.ones(sid.size, dtype=bool)
    starts[1:] = (sid[1:] != sid[:-1]) | (keys[1:] != keys[:-1])
    return starts


def _max_group_per_sample(sid: np.ndarray, keys: np.ndarray, n: int) -> np.ndarray:
    """Largest same-key group size inside each sample's window."""
    order = np.lexsort((keys, sid))
    s = sid[order]
    starts = np.flatnonzero(_segment_starts(s, keys[order]))
    counts = np.diff(np.append(starts, s.size))
    result = np.zeros(n)
    np.maximum.at(result, s[starts], counts.astype(float))
    return result


@dataclass
class _LineSideStats:
    """Everything one hierarchy side yields from a single lexsort."""

    distinct_lines: np.ndarray
    max_line: np.ndarray
    has_fault: np.ndarray
    fault_pairs: np.ndarray
    distinct_banks: np.ndarray | None = None
    distinct_devices: np.ndarray | None = None


def _line_side(
    sid: np.ndarray,
    line_keys: np.ndarray,
    cross: np.ndarray,
    bank_keys: np.ndarray,
    devices: np.ndarray | None,
    line_threshold: int,
    min_distinct: int,
    n: int,
) -> _LineSideStats:
    """Per-sample statistics of one hierarchy side (rows or columns).

    A line is faulty when it has >= ``line_threshold`` CEs across >=
    ``min_distinct`` distinct cross coordinates.  Because line keys embed
    the (device, bank) prefix without wraparound, the same sorted order is
    grouped by bank and (when ``devices`` is given) by device, so distinct
    bank / device counts ride along for free.
    """
    order = np.lexsort((cross, line_keys, sid))
    s = sid[order]
    k = line_keys[order]
    c = cross[order]
    b = bank_keys[order]

    sid_start = np.ones(s.size, dtype=bool)
    sid_start[1:] = s[1:] != s[:-1]
    group_start = sid_start.copy()
    group_start[1:] |= k[1:] != k[:-1]
    cross_start = group_start.copy()
    cross_start[1:] |= c[1:] != c[:-1]

    gid = np.cumsum(group_start) - 1
    group_counts = np.bincount(gid)
    distinct_cross = np.bincount(gid[cross_start])

    starts = np.flatnonzero(group_start)
    group_sample = s[starts]
    group_bank = b[starts]

    distinct_lines = np.bincount(group_sample, minlength=n).astype(float)
    max_line = np.zeros(n)
    np.maximum.at(max_line, group_sample, group_counts.astype(float))

    has_fault = np.zeros(n)
    faulty = (group_counts >= line_threshold) & (distinct_cross >= min_distinct)
    if faulty.any():
        has_fault[group_sample[faulty]] = 1.0
        # Bank keys are two compose levels (< 2^25), so (sample << 32) |
        # bank is collision-free in int64.
        pairs = (group_sample[faulty].astype(np.int64) << 32) + group_bank[faulty]
    else:
        pairs = np.empty(0, dtype=np.int64)

    stats = _LineSideStats(
        distinct_lines=distinct_lines,
        max_line=max_line,
        has_fault=has_fault,
        fault_pairs=pairs,
    )
    if devices is not None:
        bank_start = sid_start.copy()
        bank_start[1:] |= b[1:] != b[:-1]
        stats.distinct_banks = np.bincount(
            s[bank_start], minlength=n
        ).astype(float)
        d = devices[order]
        device_start = sid_start.copy()
        device_start[1:] |= d[1:] != d[:-1]
        stats.distinct_devices = np.bincount(
            s[device_start], minlength=n
        ).astype(float)
    return stats
