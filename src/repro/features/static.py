"""Static configuration features (manufacturer, frequency, process, ...).

The paper's feature store encodes memory configurations as static features
(Section VII).  The encoder is fitted on training configs so that category
vocabularies are stable between training and serving.
"""

from __future__ import annotations

import numpy as np

from repro.dram.spec import ChipProcess, Manufacturer
from repro.features.windows import EPS
from repro.telemetry.records import DimmConfigRecord


class StaticEncoder:
    """One-hot manufacturers/processes, scaled frequency, part-number code."""

    group = "static"

    def __init__(self) -> None:
        self._manufacturers = [m.value for m in Manufacturer]
        self._processes = [p.value for p in ChipProcess]
        self._part_numbers: dict[str, int] = {}

    def fit(self, configs: dict[str, DimmConfigRecord]) -> "StaticEncoder":
        parts = sorted({config.part_number for config in configs.values()})
        self._part_numbers = {part: i + 1 for i, part in enumerate(parts)}
        return self

    def names(self) -> list[str]:
        names = [f"static_mfr_{m}" for m in self._manufacturers]
        names += [f"static_process_{p}" for p in self._processes]
        names += [
            "static_frequency_ghz",
            "static_capacity_gb",
            "static_part_number_code",
        ]
        return names

    def compute(self, config: DimmConfigRecord) -> list[float]:
        mfr = [float(config.manufacturer == m) for m in self._manufacturers]
        process = [float(config.chip_process == p) for p in self._processes]
        # Unseen part numbers (new SKU in production) map to code 0.
        part_code = float(self._part_numbers.get(config.part_number, 0))
        return mfr + process + [
            config.frequency_mts / 1000.0,
            float(config.capacity_gb),
            part_code,
        ]

    def compute_batch(self, config: DimmConfigRecord, n_samples: int) -> np.ndarray:
        """Static features are time-invariant: one row, tiled."""
        row = np.asarray(self.compute(config), dtype=float)
        return np.tile(row, (n_samples, 1))

    @property
    def part_number_cardinality(self) -> int:
        """Number of part-number codes incl. the unseen bucket (for embeddings)."""
        return len(self._part_numbers) + 1


class EnvironmentExtractor:
    """Server-context features: error pressure from sibling DIMMs.

    A light stand-in for the paper's workload/environment metrics; the
    ablation benchmark confirms (as the paper does, citing [27]) that these
    play a minor role.
    """

    group = "environment"

    def __init__(self, observation_hours: float = 120.0):
        self.observation_hours = observation_hours
        self._server_times: dict[str, np.ndarray] = {}

    def fit(self, ce_times_by_server: dict[str, np.ndarray]) -> "EnvironmentExtractor":
        self._server_times = {
            server: np.sort(np.asarray(times, dtype=float))
            for server, times in ce_times_by_server.items()
        }
        return self

    def names(self) -> list[str]:
        return ["env_server_ce_count_5d", "env_server_has_sibling_errors"]

    def compute(self, server_id: str, own_count_5d: float, t: float) -> list[float]:
        times = self._server_times.get(server_id)
        if times is None:
            return [0.0, 0.0]
        lo = int(np.searchsorted(times, t - self.observation_hours, side="left"))
        hi = int(np.searchsorted(times, t + EPS, side="left"))
        sibling = max(0.0, float(hi - lo) - own_count_5d)
        return [sibling, float(sibling > 0)]

    def compute_batch(
        self, server_id: str, own_counts_5d: np.ndarray, ts: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`compute` for a batch of sample times."""
        ts = np.asarray(ts, dtype=float)
        times = self._server_times.get(server_id)
        if times is None:
            return np.zeros((ts.size, 2))
        bounds = np.searchsorted(
            times,
            np.concatenate([ts + EPS, ts - self.observation_hours]),
            side="left",
        )
        sibling = np.maximum(
            0.0, (bounds[: ts.size] - bounds[ts.size :]).astype(float) - own_counts_5d
        )
        return np.column_stack([sibling, (sibling > 0).astype(float)])
