"""Static configuration features (manufacturer, frequency, process, ...).

The paper's feature store encodes memory configurations as static features
(Section VII).  The encoder is fitted on training configs so that category
vocabularies are stable between training and serving.
"""

from __future__ import annotations

import numpy as np

from repro.dram.spec import ChipProcess, Manufacturer
from repro.features.windows import EPS
from repro.telemetry.columnar import segmented_searchsorted
from repro.telemetry.records import DimmConfigRecord


class StaticEncoder:
    """One-hot manufacturers/processes, scaled frequency, part-number code."""

    group = "static"

    def __init__(self) -> None:
        self._manufacturers = [m.value for m in Manufacturer]
        self._processes = [p.value for p in ChipProcess]
        self._part_numbers: dict[str, int] = {}

    def fit(self, configs: dict[str, DimmConfigRecord]) -> "StaticEncoder":
        parts = sorted({config.part_number for config in configs.values()})
        self._part_numbers = {part: i + 1 for i, part in enumerate(parts)}
        return self

    def names(self) -> list[str]:
        names = [f"static_mfr_{m}" for m in self._manufacturers]
        names += [f"static_process_{p}" for p in self._processes]
        names += [
            "static_frequency_ghz",
            "static_capacity_gb",
            "static_part_number_code",
        ]
        return names

    def compute(self, config: DimmConfigRecord) -> list[float]:
        mfr = [float(config.manufacturer == m) for m in self._manufacturers]
        process = [float(config.chip_process == p) for p in self._processes]
        # Unseen part numbers (new SKU in production) map to code 0.
        part_code = float(self._part_numbers.get(config.part_number, 0))
        return mfr + process + [
            config.frequency_mts / 1000.0,
            float(config.capacity_gb),
            part_code,
        ]

    def compute_batch(self, config: DimmConfigRecord, n_samples: int) -> np.ndarray:
        """Static features are time-invariant: one row, tiled."""
        row = np.asarray(self.compute(config), dtype=float)
        return np.tile(row, (n_samples, 1))

    def compute_rows(self, configs) -> np.ndarray:
        """One static row per config (the fleet pass repeats per segment)."""
        rows = [self.compute(config) for config in configs]
        if not rows:
            return np.empty((0, len(self.names())))
        return np.asarray(rows, dtype=float)

    @property
    def part_number_cardinality(self) -> int:
        """Number of part-number codes incl. the unseen bucket (for embeddings)."""
        return len(self._part_numbers) + 1


class EnvironmentExtractor:
    """Server-context features: error pressure from sibling DIMMs.

    A light stand-in for the paper's workload/environment metrics; the
    ablation benchmark confirms (as the paper does, citing [27]) that these
    play a minor role.
    """

    group = "environment"

    def __init__(self, observation_hours: float = 120.0):
        self.observation_hours = observation_hours
        self._server_times: dict[str, np.ndarray] = {}
        self._codes: dict[str, int] | None = None
        self._concat_times: np.ndarray | None = None
        self._offsets: np.ndarray | None = None

    def fit(self, ce_times_by_server: dict[str, np.ndarray]) -> "EnvironmentExtractor":
        self._server_times = {
            server: np.sort(np.asarray(times, dtype=float))
            for server, times in ce_times_by_server.items()
        }
        self._codes = None
        self._concat_times = None
        self._offsets = None
        return self

    def _fleet_index(self) -> None:
        """Concatenated (segment-offset) form of the fitted server times."""
        if self._codes is not None:
            return
        servers = list(self._server_times)
        arrays = [self._server_times[server] for server in servers]
        sizes = np.array([array.size for array in arrays], dtype=np.int64)
        offsets = np.zeros(sizes.size + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        self._concat_times = (
            np.concatenate(arrays) if arrays else np.empty(0, dtype=float)
        )
        self._offsets = offsets
        # The guard attribute is published last: the sharded build's
        # thread fallback may race into this method, and an early return
        # must only ever see a fully built index (a duplicate build is
        # harmless — the inputs are identical).
        self._codes = {server: code for code, server in enumerate(servers)}

    def server_code(self, server_id: str) -> int:
        """Dense code of a fitted server id (-1 when unknown)."""
        self._fleet_index()
        return self._codes.get(server_id, -1)

    def fitted_times(self, server_id: str) -> np.ndarray | None:
        """The fitted (sorted) CE-time array of one server, if known.

        The streaming incremental extractor advances two-pointer cursors
        over this array instead of re-running :meth:`compute`'s binary
        searches on every scored CE.
        """
        return self._server_times.get(server_id)

    def names(self) -> list[str]:
        return ["env_server_ce_count_5d", "env_server_has_sibling_errors"]

    def compute(self, server_id: str, own_count_5d: float, t: float) -> list[float]:
        times = self._server_times.get(server_id)
        if times is None:
            return [0.0, 0.0]
        lo = int(np.searchsorted(times, t - self.observation_hours, side="left"))
        hi = int(np.searchsorted(times, t + EPS, side="left"))
        sibling = max(0.0, float(hi - lo) - own_count_5d)
        return [sibling, float(sibling > 0)]

    def compute_batch(
        self, server_id: str, own_counts_5d: np.ndarray, ts: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`compute` for a batch of sample times."""
        ts = np.asarray(ts, dtype=float)
        times = self._server_times.get(server_id)
        if times is None:
            return np.zeros((ts.size, 2))
        bounds = np.searchsorted(
            times,
            np.concatenate([ts + EPS, ts - self.observation_hours]),
            side="left",
        )
        sibling = np.maximum(
            0.0, (bounds[: ts.size] - bounds[ts.size :]).astype(float) - own_counts_5d
        )
        return np.column_stack([sibling, (sibling > 0).astype(float)])

    def compute_fleet(
        self,
        server_codes: np.ndarray,
        own_counts_5d: np.ndarray,
        ts: np.ndarray,
    ) -> np.ndarray:
        """One cross-fleet pass of :meth:`compute_batch`.

        ``server_codes[i]`` is the :meth:`server_code` of sample ``i``'s
        server (-1 for servers unseen at fit time, which score zeros just
        like the per-DIMM path).  One segmented merge replaces the
        per-DIMM ``np.searchsorted`` pair, bit-for-bit.
        """
        ts = np.asarray(ts, dtype=float)
        server_codes = np.asarray(server_codes, dtype=np.int64)
        out = np.zeros((ts.size, 2))
        self._fleet_index()
        known = server_codes >= 0
        if not known.any():
            return out
        k = int(known.sum())
        queries = np.concatenate(
            [ts[known] + EPS, ts[known] - self.observation_hours]
        )
        segments = np.tile(server_codes[known], 2)
        bounds = segmented_searchsorted(
            self._concat_times, self._offsets, queries, segments
        )
        sibling = np.maximum(
            0.0,
            (bounds[:k] - bounds[k:]).astype(float)
            - np.asarray(own_counts_5d, dtype=float)[known],
        )
        out[known, 0] = sibling
        out[known, 1] = (sibling > 0).astype(float)
        return out
