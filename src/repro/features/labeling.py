"""Sample labeling (paper Section IV, Figure 3).

A sample drawn at time ``t`` is **positive** when the DIMM's first UE falls
inside the prediction validation window ``[t + lead, t + lead + span]``,
and **negative** when no UE falls there.  Samples at or after the DIMM's
UE are invalid (the DIMM has been pulled), as are samples whose prediction
window extends beyond the observed campaign (their labels would be
censored).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LabelingParams:
    """Paper defaults: 5-day observation, 3-hour lead, 30-day window."""

    observation_hours: float = 120.0
    lead_hours: float = 3.0
    prediction_window_hours: float = 720.0

    def __post_init__(self) -> None:
        if self.observation_hours <= 0:
            raise ValueError("observation_hours must be positive")
        if self.lead_hours < 0:
            raise ValueError("lead_hours must be >= 0")
        if self.prediction_window_hours <= 0:
            raise ValueError("prediction_window_hours must be positive")

    @property
    def horizon_hours(self) -> float:
        """How far past t the label depends on."""
        return self.lead_hours + self.prediction_window_hours


class SampleValidity(enum.Enum):
    VALID = "valid"
    AFTER_UE = "after_ue"  # DIMM already failed and was replaced
    CENSORED = "censored"  # label window extends past the campaign end


def sample_validity(
    t: float,
    ue_hour: float | None,
    campaign_end_hour: float,
    params: LabelingParams,
) -> SampleValidity:
    if ue_hour is not None and t >= ue_hour:
        return SampleValidity.AFTER_UE
    if t + params.horizon_hours > campaign_end_hour:
        # A UE inside the window still yields a trustworthy positive label;
        # otherwise the negative label would be censored.
        window_start = t + params.lead_hours
        window_end = t + params.horizon_hours
        if ue_hour is not None and window_start <= ue_hour < window_end:
            return SampleValidity.VALID
        return SampleValidity.CENSORED
    return SampleValidity.VALID


def label_at(t: float, ue_hour: float | None, params: LabelingParams) -> int:
    """1 when the DIMM's first UE falls in [t + lead, t + lead + span)."""
    if ue_hour is None:
        return 0
    window_start = t + params.lead_hours
    window_end = t + params.horizon_hours
    return int(window_start <= ue_hour < window_end)


def valid_sample_mask(
    ts: np.ndarray,
    ue_hour: float | None,
    campaign_end_hour: float,
    params: LabelingParams,
) -> np.ndarray:
    """Vectorized ``sample_validity(...) is SampleValidity.VALID``."""
    ts = np.asarray(ts, dtype=float)
    valid = np.ones(ts.size, dtype=bool)
    censored = ts + params.horizon_hours > campaign_end_hour
    if ue_hour is not None:
        valid &= ts < ue_hour  # not AFTER_UE
        in_window = (ts + params.lead_hours <= ue_hour) & (
            ue_hour < ts + params.horizon_hours
        )
        censored &= ~in_window  # a UE inside the window: still trustworthy
    return valid & ~censored


def labels_at(
    ts: np.ndarray, ue_hour: float | None, params: LabelingParams
) -> np.ndarray:
    """Vectorized :func:`label_at`."""
    ts = np.asarray(ts, dtype=float)
    if ue_hour is None:
        return np.zeros(ts.size, dtype=int)
    in_window = (ts + params.lead_hours <= ue_hour) & (
        ue_hour < ts + params.horizon_hours
    )
    return in_window.astype(int)


def valid_sample_mask_fleet(
    ts: np.ndarray,
    ue_hours: np.ndarray,
    campaign_end_hour: float,
    params: LabelingParams,
) -> np.ndarray:
    """:func:`valid_sample_mask` across many DIMMs at once.

    ``ue_hours[i]`` is sample ``i``'s DIMM's first UE hour, NaN when the
    DIMM never failed (NaN comparisons are False, which is exactly the
    ``ue_hour is None`` behaviour of the scalar path).
    """
    ts = np.asarray(ts, dtype=float)
    ue_hours = np.asarray(ue_hours, dtype=float)
    has_ue = ~np.isnan(ue_hours)
    valid = ~has_ue | (ts < ue_hours)  # not AFTER_UE
    censored = ts + params.horizon_hours > campaign_end_hour
    in_window = (
        has_ue
        & (ts + params.lead_hours <= ue_hours)
        & (ue_hours < ts + params.horizon_hours)
    )
    censored &= ~in_window  # a UE inside the window: still trustworthy
    return valid & ~censored


def labels_at_fleet(
    ts: np.ndarray, ue_hours: np.ndarray, params: LabelingParams
) -> np.ndarray:
    """:func:`labels_at` across many DIMMs at once (NaN = no UE)."""
    ts = np.asarray(ts, dtype=float)
    ue_hours = np.asarray(ue_hours, dtype=float)
    in_window = (ts + params.lead_hours <= ue_hours) & (
        ue_hours < ts + params.horizon_hours
    )
    return in_window.astype(int)
