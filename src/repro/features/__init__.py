"""Feature engineering: windows, extractors, labeling, sampling, pipeline."""

from repro.features.bitlevel import BitLevelExtractor
from repro.features.labeling import (
    LabelingParams,
    SampleValidity,
    label_at,
    labels_at,
    labels_at_fleet,
    sample_validity,
    valid_sample_mask,
    valid_sample_mask_fleet,
)
from repro.features.pipeline import ENGINES, FeaturePipeline, FeaturePipelineConfig
from repro.features.sampling import (
    SampleSet,
    SamplingParams,
    SplitSampleSets,
    aggregate_by_dimm,
    choose_sample_times,
    temporal_split,
    thinning_jitters,
)
from repro.features.spatial import SpatialExtractor
from repro.features.static import EnvironmentExtractor, StaticEncoder
from repro.features.temporal import TemporalExtractor
from repro.features.windows import (
    SUB_WINDOWS_HOURS,
    AppendableDimmHistory,
    BatchWindows,
    DimmHistory,
    FleetWindows,
    as_dimm_history,
)

__all__ = [
    "AppendableDimmHistory",
    "BatchWindows",
    "BitLevelExtractor",
    "DimmHistory",
    "ENGINES",
    "FleetWindows",
    "as_dimm_history",
    "EnvironmentExtractor",
    "FeaturePipeline",
    "FeaturePipelineConfig",
    "LabelingParams",
    "SUB_WINDOWS_HOURS",
    "SampleSet",
    "SampleValidity",
    "SamplingParams",
    "SpatialExtractor",
    "SplitSampleSets",
    "StaticEncoder",
    "TemporalExtractor",
    "aggregate_by_dimm",
    "choose_sample_times",
    "label_at",
    "labels_at",
    "labels_at_fleet",
    "sample_validity",
    "temporal_split",
    "thinning_jitters",
    "valid_sample_mask",
    "valid_sample_mask_fleet",
]
