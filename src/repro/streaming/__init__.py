"""Streaming fleet-replay subsystem.

Incremental windowed feature state (bit-for-bit parity with the offline
pipeline), a fleet event bus, an alarm-incident manager, and a bulk replay
engine that merges every DIMM's telemetry stream in timestamp order and
micro-batches scoring.  The ``streaming_replay`` scenario
(:mod:`repro.streaming.scenario`) drives a whole campaign through this
stack and compares alarm-level precision/recall against the offline
Table II path.
"""

from repro.streaming.alarms import AlarmManager, Incident, IncidentStatus
from repro.streaming.bus import ALL_TOPICS, EventBus
from repro.streaming.incremental import (
    IncrementalFeatureExtractor,
    IncrementalWindowState,
)
from repro.streaming.replay import ReplayEngine, StreamingReport

__all__ = [
    "ALL_TOPICS",
    "AlarmManager",
    "EventBus",
    "Incident",
    "IncidentStatus",
    "IncrementalFeatureExtractor",
    "IncrementalWindowState",
    "ReplayEngine",
    "StreamingReport",
]
