"""The ``streaming_replay`` scenario: online serving vs the offline path.

For every (platform, model) pair the scenario

1. serves the platform's cached simulation and SampleSet through the
   artifact cache (so re-runs re-simulate nothing),
2. trains the model on the training split and derives a sample-level
   serving threshold (validation F1 point capped by a ~3x alarm budget,
   exactly the lifecycle's tuning),
3. replays the whole campaign through the
   :class:`~repro.streaming.replay.ReplayEngine` — incremental windowed
   features, micro-batched scoring, alarm incidents — with the model going
   live at the train/test split hour, and
4. reports alarm-level precision/recall next to the offline Table II cell
   (computed from the *same* fitted model, so the only difference is
   serving semantics).

Scenario parameters (``spec.params``): ``batch_size`` (default 256),
``rescore_interval_hours`` (default 5 minutes, the production cadence),
``verify_parity`` (cross-check every served vector against
``transform_one``; the CI smoke job turns this on), ``engine``
(``"batched"`` — the column-wise replay kernels — or ``"per_event"``,
the pure-Python reference loop), and ``replay_workers`` (> 1 replays
through the distributed coordinator's DIMM-sharded worker processes).
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.experiment import MODEL_BUILDERS, ModelResult
from repro.experiments.registry import register_scenario
from repro.experiments.results import Cell
from repro.features.pipeline import FeaturePipeline, FeaturePipelineConfig
from repro.ml.threshold import select_threshold
from repro.ml.virr import virr
from repro.mlops.serving import RESCORE_INTERVAL_HOURS
from repro.streaming.bus import EventBus
from repro.streaming.replay import REPLAY_ENGINES, ReplayEngine

#: Default production rescoring cadence (the serving layer's, verbatim).
DEFAULT_RESCORE_INTERVAL_HOURS = RESCORE_INTERVAL_HOURS


def serving_threshold(model, train, validation) -> float:
    """Sample-level threshold: validation F1 point, alarm-budget capped.

    Mirrors the lifecycle's tuning: the streaming service alarms the moment
    one scoring crosses the threshold, so calibration happens on
    single-sample scores, with a ~3x-positive-rate alarm budget keeping the
    operating point sensitive under score drift.  Shared production logic:
    the ``fleet_ops`` scenario calibrates every routed model through it.
    """
    if getattr(model, "fixed_operating_point", False):
        return 0.5
    tune = validation if len(validation) and validation.y.sum() else train
    scores = model.predict_proba(tune.X)
    if tune.y.sum() == 0:
        return 0.5
    point = select_threshold(tune.y, scores, objective="f1")
    positive_rate = float(tune.y.mean())
    budget_cut = float(
        np.quantile(scores, 1.0 - min(0.5, 3.0 * positive_rate))
    )
    return min(point.threshold, budget_cut)


@register_scenario("streaming_replay")
def streaming_replay(ctx):
    """Replay each platform's stream through the streaming subsystem."""
    params = ctx.spec.params or {}
    batch_size = int(params.get("batch_size", 256))
    rescore = float(
        params.get("rescore_interval_hours", DEFAULT_RESCORE_INTERVAL_HOURS)
    )
    verify = bool(params.get("verify_parity", False))
    replay_engine = str(params.get("engine", "batched"))
    replay_workers = int(params.get("replay_workers", 0))
    heartbeat_every = int(params.get("heartbeat_every", 0) or 0)
    if replay_engine not in REPLAY_ENGINES:
        raise ValueError(
            f"unknown replay engine {replay_engine!r}; "
            f"valid: {list(REPLAY_ENGINES)}"
        )
    if verify and replay_workers > 1:
        raise ValueError(
            "verify_parity needs the in-process engine; drop replay_workers"
        )

    cells: list[Cell] = []
    extras: dict = {"streaming_replay": {}}
    for platform in ctx.spec.platforms:
        simulation = ctx.simulation(platform)
        experiment = ctx.experiment(platform)
        hours = ctx.effective_hours(platform)
        split_hour = ctx.protocol.sampling.train_fraction * hours
        # The serving pipeline is fitted exactly as the offline extraction
        # was (full campaign store), so streamed vectors live in the same
        # feature space as the cached SampleSet.
        pipeline = FeaturePipeline(
            FeaturePipelineConfig(
                labeling=ctx.protocol.labeling, sampling=ctx.protocol.sampling
            )
        )
        pipeline.fit(simulation.store)
        platform_extras = extras["streaming_replay"].setdefault(platform, {})
        for model_name in ctx.spec.models:
            builder = MODEL_BUILDERS[model_name]
            model = builder(experiment.samples.feature_names, ctx.protocol.seed)
            # Offline reference: the canonical Table II evaluation.  It fits
            # ``model`` on the platform's training split (fits are
            # deterministic, so this is the exact single_platform cell) and
            # the same fitted model then serves the streaming replay.
            offline = experiment.run_model(model_name, model=model)
            if not offline.supported:
                cells.append(Cell(platform, platform, model_name, offline))
                continue
            threshold = serving_threshold(
                model, experiment.train, experiment.validation
            )
            if replay_workers > 1:
                report_dict, summary, scored_dimms = _replay_distributed(
                    ctx, platform, model_name, model, threshold, pipeline,
                    simulation, split_hour, rescore, batch_size,
                    replay_engine, replay_workers, heartbeat_every,
                )
                precision, recall = summary["precision"], summary["recall"]
                streaming_virr = (
                    virr(precision, recall, ctx.protocol.y_c)
                    if recall > 0 and precision > 0
                    else 0.0
                )
                cells.append(
                    Cell(
                        platform, platform, model_name,
                        ModelResult(
                            platform=platform,
                            model_name=model_name,
                            supported=True,
                            precision=precision,
                            recall=recall,
                            f1=summary["f1"],
                            virr=streaming_virr,
                            threshold=float(threshold),
                            test_dimms=scored_dimms,
                            test_positive_dimms=summary[
                                "ue_dimms_predictable"
                            ],
                        ),
                    )
                )
                platform_extras[model_name] = {
                    "streaming": report_dict,
                    "offline": {
                        "precision": float(offline.precision),
                        "recall": float(offline.recall),
                        "f1": float(offline.f1),
                        "virr": float(offline.virr),
                        "test_dimms": offline.test_dimms,
                        "test_positive_dimms": offline.test_positive_dimms,
                    },
                }
                continue
            engine = ReplayEngine(
                pipeline,
                model,
                threshold,
                platform,
                configs=simulation.store.configs,
                labeling=ctx.protocol.labeling,
                bus=EventBus(),
                live_from_hour=split_hour,
                rescore_interval_hours=rescore,
                batch_size=batch_size,
                engine=replay_engine,
                verify_parity=verify,
                obs=ctx.obs,
                heartbeat_every=heartbeat_every,
            )
            report = engine.replay(simulation.store, model_name=model_name)
            summary = report.alarms
            precision, recall = summary["precision"], summary["recall"]
            streaming_virr = (
                virr(precision, recall, ctx.protocol.y_c)
                if recall > 0 and precision > 0
                else 0.0
            )
            cells.append(
                Cell(
                    platform, platform, model_name,
                    ModelResult(
                        platform=platform,
                        model_name=model_name,
                        supported=True,
                        precision=precision,
                        recall=recall,
                        f1=summary["f1"],
                        virr=streaming_virr,
                        threshold=float(threshold),
                        test_dimms=report.scored_dimms,
                        test_positive_dimms=summary["ue_dimms_predictable"],
                    ),
                )
            )
            platform_extras[model_name] = {
                "streaming": report.to_dict(),
                "offline": {
                    "precision": float(offline.precision),
                    "recall": float(offline.recall),
                    "f1": float(offline.f1),
                    "virr": float(offline.virr),
                    "test_dimms": offline.test_dimms,
                    "test_positive_dimms": offline.test_positive_dimms,
                },
            }
    return cells, extras


def _replay_distributed(
    ctx, platform, model_name, model, threshold, pipeline, simulation,
    split_hour, rescore, batch_size, replay_engine, replay_workers,
    heartbeat_every=0,
):
    """One platform's replay via the sharded coordinator.

    Returns a ``StreamingReport``-shaped dict (so the extras renderer
    and JSON artifact keep their schema), the alarm summary, and the
    scored-DIMM count.  The coordinator's coherent-flush contract makes
    the result identical for any worker count.
    """
    from repro.distributed.coordinator import ReplayCoordinator
    from repro.fleetops.engine import ServingAssignment

    assignment = ServingAssignment(
        platform=platform,
        model_name=model_name,
        train_platform=platform,
        model=model,
        threshold=float(threshold),
        pipeline=pipeline,
        configs=simulation.store.configs,
        live_from_hour=split_hour,
    )
    coordinator = ReplayCoordinator(
        {platform: assignment},
        ctx.protocol.labeling,
        policy=None,
        bus=EventBus(),
        workers=replay_workers,
        rescore_interval_hours=rescore,
        batch_size=batch_size,
        engine=replay_engine,
        obs=ctx.obs,
        heartbeat_every=heartbeat_every,
    )
    fleet_report = coordinator.replay({platform: simulation.store})
    platform_report = fleet_report.platforms[platform]
    report_dict = {
        "platform": platform,
        "model": model_name,
        "events": platform_report["events"],
        "seconds": round(fleet_report.seconds, 4),
        "events_per_second": round(fleet_report.events_per_second, 1),
        "engine": fleet_report.engine,
        "stage_seconds": {},
        "scored": platform_report["scored"],
        "scored_dimms": platform_report["scored_dimms"],
        "batches": platform_report["batches"],
        "fallbacks": platform_report["fallbacks"],
        "alarms": platform_report["alarms"],
        "bus_counts": fleet_report.bus_counts,
        "health": platform_report["health"],
        "distributed": dict(fleet_report.distributed),
    }
    return report_dict, platform_report["alarms"], platform_report[
        "scored_dimms"
    ]


def render_streaming_extras(extras: dict) -> str:
    """Human-readable summary of the scenario's ``extras`` payload."""
    lines = ["STREAMING REPLAY"]
    for platform, models in extras.get("streaming_replay", {}).items():
        for model_name, payload in models.items():
            s = payload["streaming"]
            o = payload["offline"]
            a = s["alarms"]
            lines.append(
                f"  {platform}/{model_name}: {s['events']} events in "
                f"{s['seconds']:.2f}s ({s['events_per_second']:.0f} ev/s, "
                f"engine={s.get('engine', 'per_event')}), "
                f"scored={s['scored']} on {s['scored_dimms']} DIMMs "
                f"(batches={s['batches']}, fallbacks={s['fallbacks']})"
            )
            stages = s.get("stage_seconds")
            if stages:
                lines.append(
                    "    stages: "
                    + " ".join(
                        f"{stage}={seconds:.3f}s"
                        for stage, seconds in stages.items()
                    )
                )
            lines.append(
                f"    alarms: raised={a['raised']} suppressed={a['suppressed']} "
                f"tp={a['tp']} late={a['late']} fp={a['fp']} "
                f"censored={a['censored']}"
            )
            lines.append(
                f"    alarm-level P/R/F1 = {a['precision']:.2f}/"
                f"{a['recall']:.2f}/{a['f1']:.2f}  (offline Table II: "
                f"{o['precision']:.2f}/{o['recall']:.2f}/{o['f1']:.2f})"
            )
            if "parity" in s:
                lines.append(
                    f"    parity: {s['parity']['checked']} vectors checked, "
                    f"{s['parity']['mismatches']} mismatches"
                )
    return "\n".join(lines)
