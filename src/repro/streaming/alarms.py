"""Alarm incident lifecycle for streaming replay.

The offline evaluation scores *samples*; production serving manages
*incidents*: the first alarming score on a DIMM opens an incident, further
alarming scores while it is open are suppressed (deduplicated), and an
incident that outlives its lead-time budget (labeling lead + prediction
window) without a UE expires — freeing the DIMM to alarm again.  A UE
arriving while an incident is open resolves it.

Disposition at the end of a replay mirrors the paper's per-unit accounting:

* **tp** — resolved incident whose UE arrived at least ``lead_hours`` after
  the alarm (actionable: the VMs could be migrated in time);
* **late** — resolved, but the UE beat the lead-time budget (an alarm that
  could not be acted on, counted against precision like a false alarm);
* **fp** — expired without a UE inside the budget;
* **censored** — still open when the replay ended, budget not yet elapsed
  (label unknowable; excluded from precision, like censored samples).

Recall is reported against *predictable* UE DIMMs — those that had at
least ``min_ces`` CEs before failing, the population the offline path can
label at all — with the total UE DIMM count reported alongside.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.streaming.bus import EventBus


class IncidentStatus(enum.Enum):
    OPEN = "open"
    RESOLVED = "resolved"  # a UE arrived while the incident was open
    EXPIRED = "expired"  # lead-time budget elapsed with no UE
    CENSORED = "censored"  # replay ended before the budget elapsed


@dataclass
class Incident:
    """One alarm lifecycle on one DIMM."""

    dimm_id: str
    opened_hour: float
    score: float
    status: IncidentStatus = IncidentStatus.OPEN
    suppressed: int = 0
    ue_hour: float | None = None
    closed_hour: float | None = None

    def to_dict(self) -> dict:
        return {
            "dimm_id": self.dimm_id,
            "opened_hour": self.opened_hour,
            "score": self.score,
            "status": self.status.value,
            "suppressed": self.suppressed,
            "ue_hour": self.ue_hour,
            "closed_hour": self.closed_hour,
        }


class AlarmManager:
    """Raise / suppress / expire alarms; settle dispositions at the end."""

    def __init__(
        self,
        lead_hours: float,
        prediction_window_hours: float,
        bus: EventBus | None = None,
    ):
        self.lead_hours = float(lead_hours)
        self.horizon_hours = float(lead_hours) + float(prediction_window_hours)
        self.bus = bus
        self.incidents: list[Incident] = []
        self._open: dict[str, Incident] = {}
        #: First UE hour per DIMM, with its predictability flag.
        self.ue_hours: dict[str, float] = {}
        self.ue_predictable: dict[str, bool] = {}
        self.raised = 0
        self.suppressed = 0
        self.expired = 0
        self.resolved = 0

    # -- lifecycle ---------------------------------------------------------

    def _expire_if_due(self, dimm_id: str, now: float) -> Incident | None:
        """The DIMM's open incident, after lazily expiring a stale one."""
        incident = self._open.get(dimm_id)
        if incident is None:
            return None
        expiry = incident.opened_hour + self.horizon_hours
        if now > expiry:
            incident.status = IncidentStatus.EXPIRED
            incident.closed_hour = expiry
            del self._open[dimm_id]
            self.expired += 1
            if self.bus is not None:
                self.bus.publish("incident.expired", incident)
            return None
        return incident

    def blocked(self, dimm_id: str, now: float) -> bool:
        """True while an un-expired incident suppresses rescoring."""
        return self._expire_if_due(dimm_id, now) is not None

    def open_until(self, dimm_id: str) -> float | None:
        """Expiry hour of the DIMM's open incident (``None`` if unblocked).

        While ``now <= open_until(dimm_id)``, a ``blocked(dimm_id, now)``
        call returns True with no side effects — callers may cache the
        bound and elide the call (the batched replay engine does; the
        elided calls would neither publish nor mutate anything).
        """
        incident = self._open.get(dimm_id)
        if incident is None:
            return None
        return incident.opened_hour + self.horizon_hours

    def on_alarm(self, dimm_id: str, t: float, score: float) -> Incident | None:
        """An alarming score at ``t``; returns the incident it opened."""
        incident = self._expire_if_due(dimm_id, t)
        if incident is not None:
            incident.suppressed += 1
            self.suppressed += 1
            if self.bus is not None:
                self.bus.publish("alarm.suppressed", incident)
            return None
        incident = Incident(dimm_id=dimm_id, opened_hour=t, score=score)
        self._open[dimm_id] = incident
        self.incidents.append(incident)
        self.raised += 1
        if self.bus is not None:
            self.bus.publish("alarm.raised", incident)
        return incident

    def on_ue(self, dimm_id: str, t: float, predictable: bool = True) -> None:
        """A UE at ``t``: resolve the open incident, record the failure."""
        if dimm_id not in self.ue_hours:
            self.ue_hours[dimm_id] = t
            self.ue_predictable[dimm_id] = predictable
        incident = self._expire_if_due(dimm_id, t)
        if incident is not None:
            incident.status = IncidentStatus.RESOLVED
            incident.ue_hour = t
            incident.closed_hour = t
            del self._open[dimm_id]
            self.resolved += 1
            if self.bus is not None:
                self.bus.publish("incident.resolved", incident)

    def finalize(self, end_hour: float) -> None:
        """Close every still-open incident at the end of the replay."""
        for dimm_id, incident in list(self._open.items()):
            expiry = incident.opened_hour + self.horizon_hours
            # Strict >, matching the lazy expiry in _expire_if_due: an
            # incident at exactly the budget boundary is still open.
            if end_hour > expiry:
                incident.status = IncidentStatus.EXPIRED
                incident.closed_hour = expiry
                self.expired += 1
                if self.bus is not None:
                    self.bus.publish("incident.expired", incident)
            else:
                incident.status = IncidentStatus.CENSORED
                incident.closed_hour = end_hour
        self._open.clear()

    # -- accounting --------------------------------------------------------

    def summary(self, live_from_hour: float = 0.0) -> dict:
        """Alarm-level precision/recall over incidents opened from
        ``live_from_hour`` on (the deployment point)."""
        tp = late = fp = censored = 0
        tp_dimms: set[str] = set()
        for incident in self.incidents:
            if incident.opened_hour < live_from_hour:
                continue
            if incident.status is IncidentStatus.RESOLVED:
                if incident.ue_hour >= incident.opened_hour + self.lead_hours:
                    tp += 1
                    tp_dimms.add(incident.dimm_id)
                else:
                    late += 1
            elif incident.status is IncidentStatus.EXPIRED:
                fp += 1
            elif incident.status is IncidentStatus.CENSORED:
                censored += 1
        judged = tp + late + fp
        precision = tp / judged if judged else 0.0
        live_ues = {
            dimm_id: hour
            for dimm_id, hour in self.ue_hours.items()
            if hour >= live_from_hour
        }
        predictable = [
            dimm_id for dimm_id in live_ues if self.ue_predictable[dimm_id]
        ]
        caught = sum(1 for dimm_id in predictable if dimm_id in tp_dimms)
        recall = caught / len(predictable) if predictable else 0.0
        f1 = (
            2.0 * precision * recall / (precision + recall)
            if precision + recall > 0
            else 0.0
        )
        return {
            "raised": self.raised,
            "suppressed": self.suppressed,
            "tp": tp,
            "late": late,
            "fp": fp,
            "censored": censored,
            "precision": precision,
            "recall": recall,
            "f1": f1,
            "ue_dimms": len(live_ues),
            "ue_dimms_predictable": len(predictable),
            "ue_dimms_caught": caught,
        }
