"""Fleet event bus: lightweight pub/sub for streaming-replay outcomes.

The replay hot path (every telemetry record) stays bus-free; the bus
carries the *outcomes* — alarms raised/suppressed, incidents resolved or
expired, batches scored — so dashboards, tests and ad-hoc taps can observe
a replay without touching the engine.  Handlers run synchronously in
publish order; per-topic publish counts are kept for the throughput report.
"""

from __future__ import annotations

from typing import Callable

#: Wildcard topic: handlers subscribed here see every publication.
ALL_TOPICS = "*"

Handler = Callable[[str, object], None]


class EventBus:
    """Synchronous topic -> handlers fan-out with publish accounting."""

    def __init__(self) -> None:
        self._handlers: dict[str, list[Handler]] = {}
        self._counts: dict[str, int] = {}

    def subscribe(self, topic: str, handler: Handler) -> Callable[[], None]:
        """Register ``handler`` for ``topic`` (or :data:`ALL_TOPICS`).

        Returns an unsubscribe callback.
        """
        handlers = self._handlers.setdefault(topic, [])
        handlers.append(handler)

        def unsubscribe() -> None:
            try:
                handlers.remove(handler)
            except ValueError:
                pass

        return unsubscribe

    def publish(self, topic: str, payload: object = None) -> None:
        self._counts[topic] = self._counts.get(topic, 0) + 1
        for handler in self._handlers.get(topic, ()):
            handler(topic, payload)
        if topic != ALL_TOPICS:
            for handler in self._handlers.get(ALL_TOPICS, ()):
                handler(topic, payload)

    def counts(self) -> dict[str, int]:
        """Publish count per topic (a copy)."""
        return dict(self._counts)

    def restore_counts(self, counts: dict[str, int]) -> None:
        """Replace the publish counters (checkpoint resume).

        Handlers are unpicklable closures, so a resumed replay re-attaches
        its live bus and only the accounting is restored from the snapshot.
        """
        self._counts = dict(counts)

    def __len__(self) -> int:
        return sum(len(handlers) for handlers in self._handlers.values())
