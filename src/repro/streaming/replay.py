"""Fleet replay engine: merged telemetry stream -> incremental scoring -> alarms.

The engine replays a whole campaign the way production would consume it —
every DIMM's CE/UE/memory-event stream merged in global timestamp order —
but at bulk-replay speed:

* the merge comes straight off :class:`~repro.telemetry.columnar
  .TelemetryColumns` (one ``np.lexsort`` over the three kind tables; ties
  keep the CE < UE < event order of
  :func:`repro.telemetry.log_store.iter_stream`), so no record objects are
  touched on the hot path;
* per-CE feature values come from
  :class:`~repro.streaming.incremental.IncrementalWindowState` delta
  updates instead of window re-scans;
* model scoring is micro-batched: feature vectors accumulate and one
  ``predict_proba`` call scores the batch (flushed on every UE so
  alarm-vs-failure ordering is preserved);
* alarming scores drive an :class:`~repro.streaming.alarms.AlarmManager`,
  whose incident lifecycle events go out over the
  :class:`~repro.streaming.bus.EventBus`.

Two engines drive the same decision loop:

* ``engine="batched"`` (default) — a
  :class:`~repro.streaming.kernels.ReplayKernel` precomputes every
  candidate CE's feature vector in column-wise numpy passes, and the loop
  shrinks to the scoring candidates and UEs (rescore throttling, incident
  blocking, flush boundaries, alarm ordering stay sequential);
* ``engine="per_event"`` — the always-available pure-Python reference:
  every record updates an
  :class:`~repro.streaming.incremental.IncrementalWindowState` and
  candidates are served by delta updates.

Both produce identical scores, alarms, and bus traffic.
``verify_parity=True`` cross-checks every served vector against the
reference ``FeaturePipeline.transform_one`` — the bit-for-bit guarantee the
CI streaming smoke job gates on (on either engine).
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass, field

import numpy as np

from repro.chaos.checkpoint import ReplayCheckpointer
from repro.chaos.quarantine import quarantine_columns
from repro.features.labeling import LabelingParams
from repro.obs.tracing import NULL_TRACER
from repro.streaming.alarms import AlarmManager
from repro.streaming.bus import EventBus
from repro.streaming.incremental import (
    IncrementalFeatureExtractor,
    IncrementalWindowState,
)
from repro.streaming.kernels import ReplayKernel
from repro.telemetry.columnar import CE_DIMM, CE_SERVER, CE_T, EV_KIND, EV_T, UE_T

REPLAY_ENGINES = ("batched", "per_event")


@dataclass
class StreamingReport:
    """Everything one :meth:`ReplayEngine.replay` run produced."""

    platform: str
    model_name: str
    events: int = 0
    ces: int = 0
    ues: int = 0
    mem_events: int = 0
    scored: int = 0
    batches: int = 0
    seconds: float = 0.0
    predict_seconds: float = 0.0
    events_per_second: float = 0.0
    scores_per_second: float = 0.0
    scored_dimms: int = 0
    fallbacks: int = 0
    threshold: float = 0.0
    live_from_hour: float = 0.0
    engine: str = "per_event"
    #: Wall seconds by stage: ``ingest`` (stream walk + state updates),
    #: ``features`` (feature serving / kernel build), ``predict``
    #: (``predict_proba``), ``alarms`` (alarm + incident decisions).
    stage_seconds: dict = field(default_factory=dict)
    alarms: dict = field(default_factory=dict)
    bus_counts: dict = field(default_factory=dict)
    #: Degradation accounting: quarantined rejects (by typed reason),
    #: fallback-served scores, late-arrival rebuilds, collector outage
    #: seconds (filled in by the chaos scenario — the engine cannot know).
    health: dict = field(default_factory=dict)
    #: True when the walk was stopped early by ``halt_after`` (the report
    #: is partial: no alarm summary, counters cover processed entries only).
    halted: bool = False
    parity: dict | None = None

    def to_dict(self) -> dict:
        payload = {
            "platform": self.platform,
            "model": self.model_name,
            "engine": self.engine,
            "events": self.events,
            "ces": self.ces,
            "ues": self.ues,
            "mem_events": self.mem_events,
            "scored": self.scored,
            "batches": self.batches,
            "seconds": round(self.seconds, 4),
            "predict_seconds": round(self.predict_seconds, 4),
            "events_per_second": round(self.events_per_second, 1),
            "scores_per_second": round(self.scores_per_second, 1),
            "scored_dimms": self.scored_dimms,
            "fallbacks": self.fallbacks,
            "threshold": self.threshold,
            "live_from_hour": self.live_from_hour,
            "stage_seconds": {
                stage: round(seconds, 4)
                for stage, seconds in self.stage_seconds.items()
            },
            "alarms": dict(self.alarms),
            "bus_counts": dict(self.bus_counts),
            "health": dict(self.health),
        }
        if self.halted:
            payload["halted"] = True
        if self.parity is not None:
            payload["parity"] = dict(self.parity)
        return payload


class ReplayEngine:
    """Streaming scorer over one campaign's telemetry."""

    def __init__(
        self,
        pipeline,
        model,
        threshold: float,
        platform: str,
        configs: dict,
        labeling: LabelingParams | None = None,
        *,
        bus: EventBus | None = None,
        live_from_hour: float = 0.0,
        alarm_from_hour: float | None = None,
        min_ces_before_scoring: int = 2,
        rescore_interval_hours: float = 0.0,
        batch_size: int = 256,
        verify_parity: bool = False,
        engine: str = "batched",
        alarms: AlarmManager | None = None,
        score_hook=None,
        collect_scores: bool = False,
        obs=None,
        obs_labels: dict | None = None,
        heartbeat_every: int = 0,
    ):
        if engine not in REPLAY_ENGINES:
            raise ValueError(
                f"unknown replay engine {engine!r}; expected one of "
                f"{REPLAY_ENGINES}"
            )
        labeling = labeling if labeling is not None else LabelingParams()
        self.extractor = IncrementalFeatureExtractor(pipeline)
        self.pipeline = pipeline
        self.model = model
        self.threshold = float(threshold)
        self.platform = platform
        self.configs = configs
        self.bus = bus if bus is not None else EventBus()
        # An injected manager lets callers change incident semantics — the
        # lifecycle passes one with an infinite horizon so incidents block
        # until their UE, exactly like the serving layer's AlarmSystem.
        self.alarms = alarms if alarms is not None else AlarmManager(
            labeling.lead_hours, labeling.prediction_window_hours, self.bus
        )
        self.live_from_hour = float(live_from_hour)
        # Scoring starts at live_from_hour; alarms can be gated later still
        # (the lifecycle scores the whole campaign to warm its rescore
        # throttle but only alarms once the model is deployed).
        self.alarm_from_hour = (
            self.live_from_hour if alarm_from_hour is None
            else float(alarm_from_hour)
        )
        self.min_ces_before_scoring = int(min_ces_before_scoring)
        self.rescore_interval_hours = float(rescore_interval_hours)
        self.batch_size = int(batch_size)
        self.verify_parity = bool(verify_parity)
        self.engine = engine
        self.parity_checked = 0
        self.parity_mismatches = 0
        self._matrix_buf: np.ndarray | None = None
        #: Per-score callback ``(dimm_id, t, features, score)`` run in flush
        #: order (drift monitors, dashboards); None keeps the flush loop lean.
        self.score_hook = score_hook
        self.collect_scores = bool(collect_scores)
        #: ``(dimm_id, t, score)`` per scored vector when ``collect_scores``
        #: — the bit-for-bit record the fleet-parity suite compares.
        self.score_log: list[tuple[str, float, float]] = []
        #: Optional :class:`repro.obs.Observability` bundle.  Spans exist
        #: at stage granularity only and instruments are filled from the
        #: finished report, so instrumented replays stay bit-identical.
        self.obs = obs
        self._obs_labels = dict(obs_labels or {})
        self._tracer = obs.tracer if obs is not None else NULL_TRACER
        #: Publish a live heartbeat snapshot every N processed walk
        #: entries (0 = off).  Event-count based, never wall-clock, so
        #: the heartbeat sequence is deterministic; heartbeats are
        #: write-only (obs-parity), so scores/alarms/bus stay identical.
        self.heartbeat_every = int(heartbeat_every)

    def replay(
        self,
        store,
        model_name: str = "",
        *,
        checkpoint_every: int = 0,
        checkpoint_path=None,
        resume_from=None,
        halt_after: int | None = None,
    ) -> StreamingReport:
        """Replay every record in ``store`` (a :class:`LogStore`).

        Malformed rows are quarantined to the bus dead-letter topic before
        the walk starts (:mod:`repro.chaos.quarantine`); a clean store
        passes through untouched, keeping clean runs bit-identical.

        ``checkpoint_every`` + ``checkpoint_path`` write a snapshot every N
        processed walk entries; ``resume_from`` restores one and skips the
        already-processed prefix; ``halt_after`` stops this call after N
        entries (writing a final snapshot when a path is set) and returns a
        partial report with ``halted=True`` — the deterministic stand-in
        for a killed process.  A resumed replay reproduces the
        uninterrupted run's score log, alarms and bus counts exactly.
        """
        tracer = self._tracer
        with tracer.span(
            "replay",
            platform=self.platform,
            model=model_name,
            engine=self.engine,
            **self._obs_labels,
        ) as root:
            with tracer.span("replay.quarantine"):
                columns, rejects = quarantine_columns(
                    store.columns, bus=self.bus
                )
            ckpt = None
            if (
                checkpoint_every
                or checkpoint_path is not None
                or resume_from is not None
                or halt_after is not None
            ):
                ckpt = ReplayCheckpointer(
                    every=checkpoint_every,
                    path=checkpoint_path,
                    halt_after=halt_after,
                    resume_from=resume_from,
                    engine=self.engine,
                    kind="replay",
                )
            if self.engine == "batched":
                report = self._replay_batched(columns, model_name, ckpt, rejects)
            else:
                report = self._replay_per_event(columns, model_name, ckpt, rejects)
            for stage in sorted(report.stage_seconds):
                tracer.record(
                    "replay.stage." + stage,
                    wall_seconds=report.stage_seconds[stage],
                )
            root.attributes.update(
                events=report.events,
                scored=report.scored,
                halted=report.halted,
            )
        if self.obs is not None:
            self.obs.record_streaming_report(
                report, self._obs_labels or None
            )
        return report

    def _replay_per_event(
        self, columns, model_name: str, ckpt, rejects
    ) -> StreamingReport:
        """The pure-Python reference path: one loop iteration per record."""
        ce_rows = columns.ces.rows()
        ue_rows = columns.ues.rows()
        ev_rows = columns.events.rows()
        n_ce, n_ue, n_ev = len(ce_rows), len(ue_rows), len(ev_rows)
        all_times = np.concatenate(
            [ce_rows[:, CE_T], ue_rows[:, UE_T], ev_rows[:, EV_T]]
        )
        tags = np.empty(all_times.size, dtype=np.int8)
        tags[:n_ce] = 0
        tags[n_ce : n_ce + n_ue] = 1
        tags[n_ce + n_ue :] = 2
        # Stable two-key sort keeps iter_stream's CE < UE < event tie order.
        order = np.lexsort((tags, all_times))
        ce_list = ce_rows.tolist()
        ue_list = ue_rows.tolist()
        ev_list = ev_rows.tolist()

        dimm_name = columns.dimms.name
        server_name = columns.servers.name
        configs = self.configs
        live_from = self.live_from_hour
        min_ces = self.min_ces_before_scoring
        rescore = self.rescore_interval_hours
        batch_size = self.batch_size
        verify = self.verify_parity

        states: dict[int, IncrementalWindowState] = {}
        state_configs: dict[int, object] = {}
        last_scored: dict[int, float] = {}
        scored_dimms: set[int] = set()
        retired_fallbacks = 0  # fallbacks of states popped on a UE
        retired_rebuilds = 0  # likewise for late-arrival rebuilds
        pending: list[tuple[str, float, np.ndarray]] = []
        report = StreamingReport(
            platform=self.platform,
            model_name=model_name,
            threshold=self.threshold,
            live_from_hour=live_from,
            engine="per_event",
            stage_seconds={
                "ingest": 0.0, "features": 0.0, "predict": 0.0, "alarms": 0.0,
            },
        )

        walk = order.tolist()
        if ckpt is not None and ckpt.resume_state is not None:
            snap = pickle.loads(ckpt.resume_state["state"])
            self.extractor = snap["extractor"]
            states = snap["states"]
            state_configs = snap["state_configs"]
            self.alarms = snap["alarms"]
            self.alarms.bus = self.bus
            last_scored = snap["last_scored"]
            scored_dimms = snap["scored_dimms"]
            retired_fallbacks = snap["retired_fallbacks"]
            retired_rebuilds = snap["retired_rebuilds"]
            pending = snap["pending"]
            self.score_log = snap["score_log"]
            self.parity_checked, self.parity_mismatches = snap["parity"]
            for key, value in snap["counters"].items():
                setattr(report, key, value)
            self.bus.restore_counts(ckpt.resume_state["bus_counts"])
            walk = walk[ckpt.position:]
        extractor = self.extractor
        alarms = self.alarms

        def snapshot() -> dict:
            # One inner pickle preserves the shared references between
            # states, the extractor's caches and the alarm ledger; the bus
            # (unpicklable handler closures) is detached for the dump.
            alarms.bus = None
            try:
                blob = pickle.dumps(
                    {
                        "extractor": extractor,
                        "states": states,
                        "state_configs": state_configs,
                        "alarms": alarms,
                        "last_scored": last_scored,
                        "scored_dimms": scored_dimms,
                        "retired_fallbacks": retired_fallbacks,
                        "retired_rebuilds": retired_rebuilds,
                        "pending": pending,
                        "score_log": self.score_log,
                        "parity": (
                            self.parity_checked, self.parity_mismatches
                        ),
                        "counters": {
                            "ces": report.ces,
                            "ues": report.ues,
                            "mem_events": report.mem_events,
                            "scored": report.scored,
                            "batches": report.batches,
                        },
                    },
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            finally:
                alarms.bus = self.bus
            return {"state": blob, "bus_counts": self.bus.counts()}

        stage = report.stage_seconds
        feature_seconds = 0.0
        alarm_seconds = 0.0
        hb = self.heartbeat_every if self.obs is not None else 0
        hb_total = n_ce + n_ue + n_ev
        hb_processed = 0

        start = time.perf_counter()
        for index in walk:
            if ckpt is not None and ckpt.step(snapshot):
                report.halted = True
                report.seconds = time.perf_counter() - start
                report.events = n_ce + n_ue + n_ev
                return report
            if hb:
                hb_processed += 1
                if hb_processed % hb == 0:
                    self.obs.heartbeat("replay", {
                        "events": hb_processed,
                        "total": hb_total,
                        "fraction": hb_processed / hb_total,
                        "hour": float(all_times[index]),
                        "open_incidents": len(
                            getattr(alarms, "_open", ())
                        ),
                        "scored": report.scored,
                    })
            if index < n_ce:
                row = ce_list[index]
                t = row[CE_T]
                code = int(row[CE_DIMM])
                state = states.get(code)
                if state is None:
                    state = extractor.state_for(dimm_name(code))
                    states[code] = state
                    state_configs[code] = configs.get(state.dimm_id)
                if not state.server_id:
                    state.server_id = server_name(int(row[CE_SERVER]))
                state.add_ce(t, row[1], row[2], row[3], row[4], row[5],
                             row[6], row[7], row[8], row[9], row[10])
                report.ces += 1
                if t < live_from or len(state.times) < min_ces:
                    continue
                config = state_configs[code]
                if config is None:
                    continue
                last = last_scored.get(code)
                if last is not None and t - last < rescore:
                    continue
                if alarms.blocked(state.dimm_id, t):
                    continue
                t0 = time.perf_counter()
                features = extractor.serve(state, config, t)
                feature_seconds += time.perf_counter() - t0
                if verify:
                    self.parity_checked += 1
                    reference = self.pipeline.transform_one(
                        state.history_view(), config, t
                    )
                    if not np.array_equal(features, reference):
                        self.parity_mismatches += 1
                last_scored[code] = t
                scored_dimms.add(code)
                pending.append((state.dimm_id, t, features))
                if len(pending) >= batch_size:
                    self._flush(pending, report)
            elif index < n_ce + n_ue:
                row = ue_list[index - n_ce]
                if pending:
                    # Alarm-vs-failure ordering: settle queued scores first.
                    self._flush(pending, report)
                code = int(row[1])
                state = states.pop(code, None)
                if state is not None:
                    retired_fallbacks += state.fallbacks
                    retired_rebuilds += state.rebuilds
                predictable = state is not None and len(state.times) >= min_ces
                dimm_id = state.dimm_id if state is not None else dimm_name(code)
                t0 = time.perf_counter()
                alarms.on_ue(dimm_id, row[0], predictable=predictable)
                alarm_seconds += time.perf_counter() - t0
                last_scored.pop(code, None)
                report.ues += 1
            else:
                row = ev_list[index - n_ce - n_ue]
                code = int(row[1])
                state = states.get(code)
                if state is None:
                    state = extractor.state_for(dimm_name(code))
                    states[code] = state
                    state_configs[code] = configs.get(state.dimm_id)
                state.add_event_code(int(row[EV_KIND]), row[EV_T])
                report.mem_events += 1
        if pending:
            self._flush(pending, report)
        report.seconds = time.perf_counter() - start

        stage["features"] = feature_seconds
        stage["predict"] = report.predict_seconds
        stage["alarms"] += alarm_seconds
        stage["ingest"] = max(
            report.seconds - stage["features"] - stage["predict"]
            - stage["alarms"],
            0.0,
        )
        end_hour = float(all_times[order[-1]]) if all_times.size else 0.0
        alarms.finalize(end_hour)
        report.events = n_ce + n_ue + n_ev
        report.scored_dimms = len(scored_dimms)
        report.fallbacks = retired_fallbacks + sum(
            state.fallbacks for state in states.values()
        )
        rebuilds = retired_rebuilds + sum(
            state.rebuilds for state in states.values()
        )
        self._finish_report(report, verify, rejects, rebuilds)
        return report

    def _replay_batched(
        self, columns, model_name: str, ckpt, rejects
    ) -> StreamingReport:
        """The columnar fast path: precomputed kernels + a candidate loop.

        A :class:`ReplayKernel` precomputes the feature vector of every
        scoring candidate (bit-for-bit the per-event serve result); the
        loop then walks only the candidates and UEs in merged stream order,
        keeping the inherently sequential decisions — rescore throttling,
        incident blocking (``AlarmManager.blocked`` has lazy-expiry side
        effects), micro-batch flush boundaries, alarm-vs-failure ordering —
        exactly as the per-event engine makes them.
        """
        alarms = self.alarms
        live_from = self.live_from_hour
        rescore = self.rescore_interval_hours
        batch_size = self.batch_size
        verify = self.verify_parity

        report = StreamingReport(
            platform=self.platform,
            model_name=model_name,
            threshold=self.threshold,
            live_from_hour=live_from,
            engine="batched",
            stage_seconds={
                "ingest": 0.0, "features": 0.0, "predict": 0.0, "alarms": 0.0,
            },
        )
        stage = report.stage_seconds
        alarm_seconds = 0.0

        start = time.perf_counter()
        with self._tracer.span("replay.kernel_build"):
            kernel = ReplayKernel(
                self.pipeline,
                columns,
                self.configs,
                min_ces_before_scoring=self.min_ces_before_scoring,
                live_from_hour=live_from,
            )

        # Merged walk over candidates + UEs only (stable lexsort keeps the
        # full stream's CE < UE tie order on the selected subset).
        cand = np.flatnonzero(kernel.eligible)
        n_cand = cand.size
        sel_t = np.concatenate([kernel.ce_times[cand], kernel.ue_times])
        sel_tag = np.empty(sel_t.size, dtype=np.int8)
        sel_tag[:n_cand] = 0
        sel_tag[n_cand:] = 1
        sel_idx = np.concatenate(
            [cand, np.arange(kernel.n_ue, dtype=np.int64)]
        )
        sel_code = np.concatenate(
            [kernel.ce_codes[cand], kernel.ue_codes]
        ).astype(np.int64)
        order = np.lexsort((sel_tag, sel_t))

        dimm_name = columns.dimms.name
        cand_dimms = [
            kernel.seg_dimm_ids[s] for s in kernel.seg_of_ce[cand].tolist()
        ]
        dimm_of_code: dict[int, str] = {}
        row_of = kernel.row_of.tolist()
        fallback_list = kernel.fallback.tolist()
        ue_predictable = kernel.ue_predictable.tolist()
        last_scored: dict[int, float] = {}
        scored_dimms: set[int] = set()
        served_fallbacks = 0
        #: ``(dimm_id, t, query_row)`` — features materialise at flush time.
        pending: list[tuple[str, float, int]] = []
        # While a DIMM's incident blocks it, every candidate at
        # ``t <= open_until`` would see ``blocked() -> True`` with no side
        # effects, so those calls can be elided wholesale; the first
        # candidate past the bound still calls ``blocked`` and triggers the
        # lazy expiry publish at the same point the per-event engine does.
        # Only the base manager guarantees these semantics — a subclass
        # gets every call.
        blocked_until: dict[int, float] = {}

        if ckpt is not None and ckpt.resume_state is not None:
            snap = pickle.loads(ckpt.resume_state["state"])
            self.alarms = alarms = snap["alarms"]
            alarms.bus = self.bus
            last_scored = snap["last_scored"]
            scored_dimms = snap["scored_dimms"]
            served_fallbacks = snap["served_fallbacks"]
            pending = snap["pending"]
            blocked_until = snap["blocked_until"]
            dimm_of_code = snap["dimm_of_code"]
            self.score_log = snap["score_log"]
            self.parity_checked, self.parity_mismatches = snap["parity"]
            report.scored = snap["counters"]["scored"]
            report.batches = snap["counters"]["batches"]
            self.bus.restore_counts(ckpt.resume_state["bus_counts"])
            order = order[ckpt.position:]
        fast_alarms = type(alarms) is AlarmManager

        def snapshot() -> dict:
            # The kernel and walk order are deterministic functions of the
            # store — only the sequential decision state is persisted.
            alarms.bus = None
            try:
                blob = pickle.dumps(
                    {
                        "alarms": alarms,
                        "last_scored": last_scored,
                        "scored_dimms": scored_dimms,
                        "served_fallbacks": served_fallbacks,
                        "pending": pending,
                        "blocked_until": blocked_until,
                        "dimm_of_code": dimm_of_code,
                        "score_log": self.score_log,
                        "parity": (
                            self.parity_checked, self.parity_mismatches
                        ),
                        "counters": {
                            "scored": report.scored,
                            "batches": report.batches,
                        },
                    },
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            finally:
                alarms.bus = self.bus
            return {"state": blob, "bus_counts": self.bus.counts()}

        iters = zip(
            sel_tag[order].tolist(),
            sel_idx[order].tolist(),
            sel_t[order].tolist(),
            sel_code[order].tolist(),
        )
        cand_rank = np.empty(sel_t.size, dtype=np.int64)
        cand_rank[:n_cand] = np.arange(n_cand)
        cand_rank[n_cand:] = -1
        ranks = cand_rank[order].tolist()
        hb = self.heartbeat_every if self.obs is not None else 0
        hb_total = int(sel_t.size)
        hb_processed = 0
        for (tag, index, t, code), rank in zip(iters, ranks):
            if ckpt is not None and ckpt.step(snapshot):
                report.halted = True
                report.seconds = time.perf_counter() - start
                report.ces = kernel.n_ce
                report.ues = kernel.n_ue
                report.mem_events = kernel.n_ev
                report.events = kernel.n_ce + kernel.n_ue + kernel.n_ev
                return report
            if hb:
                hb_processed += 1
                if hb_processed % hb == 0:
                    self.obs.heartbeat("replay", {
                        "events": hb_processed,
                        "total": hb_total,
                        "fraction": (
                            hb_processed / hb_total if hb_total else 1.0
                        ),
                        "hour": float(t),
                        "open_incidents": len(
                            getattr(alarms, "_open", ())
                        ),
                        "scored": report.scored,
                    })
            if tag == 0:
                if rescore > 0:
                    last = last_scored.get(code)
                    if last is not None and t - last < rescore:
                        continue
                bound = blocked_until.get(code)
                if bound is not None:
                    if t <= bound:
                        continue
                    del blocked_until[code]
                dimm_id = cand_dimms[rank]
                if alarms.blocked(dimm_id, t):
                    if fast_alarms:
                        blocked_until[code] = alarms.open_until(dimm_id)
                    continue
                if fallback_list[index]:
                    served_fallbacks += 1
                if rescore > 0:
                    last_scored[code] = t
                scored_dimms.add(code)
                pending.append((dimm_id, t, row_of[index]))
                if len(pending) >= batch_size:
                    self._flush_batched(kernel, pending, report)
            else:
                if pending:
                    # Alarm-vs-failure ordering: settle queued scores first.
                    self._flush_batched(kernel, pending, report)
                dimm_id = dimm_of_code.get(code)
                if dimm_id is None:
                    dimm_id = dimm_of_code[code] = dimm_name(code)
                t0 = time.perf_counter()
                alarms.on_ue(dimm_id, t, predictable=ue_predictable[index])
                alarm_seconds += time.perf_counter() - t0
                blocked_until.pop(code, None)
                if rescore > 0:
                    last_scored.pop(code, None)
        if pending:
            self._flush_batched(kernel, pending, report)
        report.seconds = time.perf_counter() - start

        stage["predict"] = report.predict_seconds
        stage["alarms"] += alarm_seconds
        stage["ingest"] = max(
            report.seconds - stage["features"] - stage["predict"]
            - stage["alarms"],
            0.0,
        )
        alarms.finalize(kernel.end_hour)
        report.ces = kernel.n_ce
        report.ues = kernel.n_ue
        report.mem_events = kernel.n_ev
        report.events = kernel.n_ce + kernel.n_ue + kernel.n_ev
        report.scored_dimms = len(scored_dimms)
        report.fallbacks = served_fallbacks
        self._finish_report(report, verify, rejects, 0)
        return report

    def _finish_report(
        self, report: StreamingReport, verify: bool, rejects, rebuilds: int = 0
    ) -> None:
        report.health = {
            "rejected_events": rejects.total,
            "rejects": dict(rejects.by_reason),
            "fallback_scores": report.fallbacks,
            "late_rebuilds": rebuilds,
            "outage_seconds": 0.0,
        }
        report.events_per_second = (
            report.events / report.seconds if report.seconds > 0 else 0.0
        )
        report.scores_per_second = (
            report.scored / report.seconds if report.seconds > 0 else 0.0
        )
        report.alarms = self.alarms.summary(report.live_from_hour)
        report.bus_counts = self.bus.counts()
        if verify:
            report.parity = {
                "checked": self.parity_checked,
                "mismatches": self.parity_mismatches,
            }

    def _batch_buffer(self, n: int, width: int) -> np.ndarray:
        """The reused micro-batch score matrix (satellite of the hot loop:
        no per-flush list-of-rows + ``np.asarray`` allocation)."""
        buf = self._matrix_buf
        if buf is None or buf.shape[0] < n or buf.shape[1] != width:
            buf = self._matrix_buf = np.empty(
                (max(n, self.batch_size), width)
            )
        return buf

    def _flush(self, pending: list, report: StreamingReport) -> None:
        """Score one per-event micro-batch and run the alarm decisions."""
        n = len(pending)
        buf = self._batch_buffer(n, pending[0][2].shape[0])
        for i, (_, _, features) in enumerate(pending):
            buf[i] = features
        self._score_batch(buf[:n], pending, report)
        pending.clear()

    def _flush_batched(
        self, kernel: ReplayKernel, pending: list, report: StreamingReport
    ) -> None:
        """Materialise one batched micro-batch's features, score, alarm."""
        n = len(pending)
        buf = self._batch_buffer(n, kernel.n_features)
        rows = np.fromiter(
            (row for _, _, row in pending), dtype=np.int64, count=n
        )
        t0 = time.perf_counter()
        matrix = kernel.features_for(rows, out=buf[:n])
        report.stage_seconds["features"] += time.perf_counter() - t0
        if self.verify_parity:
            for i, row in enumerate(rows.tolist()):
                self.parity_checked += 1
                reference = kernel.reference_for_query(row)
                if not np.array_equal(matrix[i], reference):
                    self.parity_mismatches += 1
        self._score_batch(matrix, pending, report)
        pending.clear()

    def _score_batch(
        self, matrix: np.ndarray, pending: list, report: StreamingReport
    ) -> None:
        """``predict_proba`` one matrix and run the alarm decisions in order."""
        t0 = time.perf_counter()
        scores = self.model.predict_proba(matrix)
        t1 = time.perf_counter()
        report.predict_seconds += t1 - t0
        threshold = self.threshold
        alarm_from = self.alarm_from_hour
        hook = self.score_hook
        collect = self.collect_scores
        for i, ((dimm_id, t, _), score) in enumerate(zip(pending, scores)):
            value = float(score)
            if collect:
                self.score_log.append((dimm_id, t, value))
            if hook is not None:
                hook(dimm_id, t, matrix[i], value)
            if value >= threshold and t >= alarm_from:
                self.alarms.on_alarm(dimm_id, t, value)
        report.scored += len(pending)
        report.batches += 1
        report.stage_seconds["alarms"] += time.perf_counter() - t1
