"""Fleet replay engine: merged telemetry stream -> incremental scoring -> alarms.

The engine replays a whole campaign the way production would consume it —
every DIMM's CE/UE/memory-event stream merged in global timestamp order —
but at bulk-replay speed:

* the merge comes straight off :class:`~repro.telemetry.columnar
  .TelemetryColumns` (one ``np.lexsort`` over the three kind tables; ties
  keep the CE < UE < event order of
  :func:`repro.telemetry.log_store.iter_stream`), so no record objects are
  touched on the hot path;
* per-CE feature values come from
  :class:`~repro.streaming.incremental.IncrementalWindowState` delta
  updates instead of window re-scans;
* model scoring is micro-batched: feature vectors accumulate and one
  ``predict_proba`` call scores the batch (flushed on every UE so
  alarm-vs-failure ordering is preserved);
* alarming scores drive an :class:`~repro.streaming.alarms.AlarmManager`,
  whose incident lifecycle events go out over the
  :class:`~repro.streaming.bus.EventBus`.

``verify_parity=True`` cross-checks every served vector against the
reference ``FeaturePipeline.transform_one`` — the bit-for-bit guarantee the
CI streaming smoke job gates on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.features.labeling import LabelingParams
from repro.streaming.alarms import AlarmManager
from repro.streaming.bus import EventBus
from repro.streaming.incremental import (
    IncrementalFeatureExtractor,
    IncrementalWindowState,
)
from repro.telemetry.columnar import CE_DIMM, CE_SERVER, CE_T, EV_KIND, EV_T, UE_T


@dataclass
class StreamingReport:
    """Everything one :meth:`ReplayEngine.replay` run produced."""

    platform: str
    model_name: str
    events: int = 0
    ces: int = 0
    ues: int = 0
    mem_events: int = 0
    scored: int = 0
    batches: int = 0
    seconds: float = 0.0
    predict_seconds: float = 0.0
    events_per_second: float = 0.0
    scores_per_second: float = 0.0
    scored_dimms: int = 0
    fallbacks: int = 0
    threshold: float = 0.0
    live_from_hour: float = 0.0
    alarms: dict = field(default_factory=dict)
    bus_counts: dict = field(default_factory=dict)
    parity: dict | None = None

    def to_dict(self) -> dict:
        payload = {
            "platform": self.platform,
            "model": self.model_name,
            "events": self.events,
            "ces": self.ces,
            "ues": self.ues,
            "mem_events": self.mem_events,
            "scored": self.scored,
            "batches": self.batches,
            "seconds": round(self.seconds, 4),
            "predict_seconds": round(self.predict_seconds, 4),
            "events_per_second": round(self.events_per_second, 1),
            "scores_per_second": round(self.scores_per_second, 1),
            "scored_dimms": self.scored_dimms,
            "fallbacks": self.fallbacks,
            "threshold": self.threshold,
            "live_from_hour": self.live_from_hour,
            "alarms": dict(self.alarms),
            "bus_counts": dict(self.bus_counts),
        }
        if self.parity is not None:
            payload["parity"] = dict(self.parity)
        return payload


class ReplayEngine:
    """Streaming scorer over one campaign's telemetry."""

    def __init__(
        self,
        pipeline,
        model,
        threshold: float,
        platform: str,
        configs: dict,
        labeling: LabelingParams | None = None,
        *,
        bus: EventBus | None = None,
        live_from_hour: float = 0.0,
        alarm_from_hour: float | None = None,
        min_ces_before_scoring: int = 2,
        rescore_interval_hours: float = 0.0,
        batch_size: int = 256,
        verify_parity: bool = False,
        alarms: AlarmManager | None = None,
        score_hook=None,
        collect_scores: bool = False,
    ):
        labeling = labeling if labeling is not None else LabelingParams()
        self.extractor = IncrementalFeatureExtractor(pipeline)
        self.pipeline = pipeline
        self.model = model
        self.threshold = float(threshold)
        self.platform = platform
        self.configs = configs
        self.bus = bus if bus is not None else EventBus()
        # An injected manager lets callers change incident semantics — the
        # lifecycle passes one with an infinite horizon so incidents block
        # until their UE, exactly like the serving layer's AlarmSystem.
        self.alarms = alarms if alarms is not None else AlarmManager(
            labeling.lead_hours, labeling.prediction_window_hours, self.bus
        )
        self.live_from_hour = float(live_from_hour)
        # Scoring starts at live_from_hour; alarms can be gated later still
        # (the lifecycle scores the whole campaign to warm its rescore
        # throttle but only alarms once the model is deployed).
        self.alarm_from_hour = (
            self.live_from_hour if alarm_from_hour is None
            else float(alarm_from_hour)
        )
        self.min_ces_before_scoring = int(min_ces_before_scoring)
        self.rescore_interval_hours = float(rescore_interval_hours)
        self.batch_size = int(batch_size)
        self.verify_parity = bool(verify_parity)
        self.parity_checked = 0
        self.parity_mismatches = 0
        #: Per-score callback ``(dimm_id, t, features, score)`` run in flush
        #: order (drift monitors, dashboards); None keeps the flush loop lean.
        self.score_hook = score_hook
        self.collect_scores = bool(collect_scores)
        #: ``(dimm_id, t, score)`` per scored vector when ``collect_scores``
        #: — the bit-for-bit record the fleet-parity suite compares.
        self.score_log: list[tuple[str, float, float]] = []

    def replay(self, store, model_name: str = "") -> StreamingReport:
        """Replay every record in ``store`` (a :class:`LogStore`)."""
        columns = store.columns
        ce_rows = columns.ces.rows()
        ue_rows = columns.ues.rows()
        ev_rows = columns.events.rows()
        n_ce, n_ue, n_ev = len(ce_rows), len(ue_rows), len(ev_rows)
        all_times = np.concatenate(
            [ce_rows[:, CE_T], ue_rows[:, UE_T], ev_rows[:, EV_T]]
        )
        tags = np.empty(all_times.size, dtype=np.int8)
        tags[:n_ce] = 0
        tags[n_ce : n_ce + n_ue] = 1
        tags[n_ce + n_ue :] = 2
        # Stable two-key sort keeps iter_stream's CE < UE < event tie order.
        order = np.lexsort((tags, all_times))
        ce_list = ce_rows.tolist()
        ue_list = ue_rows.tolist()
        ev_list = ev_rows.tolist()

        dimm_name = columns.dimms.name
        server_name = columns.servers.name
        extractor = self.extractor
        alarms = self.alarms
        configs = self.configs
        live_from = self.live_from_hour
        min_ces = self.min_ces_before_scoring
        rescore = self.rescore_interval_hours
        batch_size = self.batch_size
        verify = self.verify_parity

        states: dict[int, IncrementalWindowState] = {}
        state_configs: dict[int, object] = {}
        last_scored: dict[int, float] = {}
        scored_dimms: set[int] = set()
        retired_fallbacks = 0  # fallbacks of states popped on a UE
        pending: list[tuple[str, float, np.ndarray]] = []
        report = StreamingReport(
            platform=self.platform,
            model_name=model_name,
            threshold=self.threshold,
            live_from_hour=live_from,
        )

        start = time.perf_counter()
        for index in order.tolist():
            if index < n_ce:
                row = ce_list[index]
                t = row[CE_T]
                code = int(row[CE_DIMM])
                state = states.get(code)
                if state is None:
                    state = extractor.state_for(dimm_name(code))
                    states[code] = state
                    state_configs[code] = configs.get(state.dimm_id)
                if not state.server_id:
                    state.server_id = server_name(int(row[CE_SERVER]))
                state.add_ce(t, row[1], row[2], row[3], row[4], row[5],
                             row[6], row[7], row[8], row[9], row[10])
                report.ces += 1
                if t < live_from or len(state.times) < min_ces:
                    continue
                config = state_configs[code]
                if config is None:
                    continue
                last = last_scored.get(code)
                if last is not None and t - last < rescore:
                    continue
                if alarms.blocked(state.dimm_id, t):
                    continue
                features = extractor.serve(state, config, t)
                if verify:
                    self.parity_checked += 1
                    reference = self.pipeline.transform_one(
                        state.history_view(), config, t
                    )
                    if not np.array_equal(features, reference):
                        self.parity_mismatches += 1
                last_scored[code] = t
                scored_dimms.add(code)
                pending.append((state.dimm_id, t, features))
                if len(pending) >= batch_size:
                    self._flush(pending, report)
            elif index < n_ce + n_ue:
                row = ue_list[index - n_ce]
                if pending:
                    # Alarm-vs-failure ordering: settle queued scores first.
                    self._flush(pending, report)
                code = int(row[1])
                state = states.pop(code, None)
                if state is not None:
                    retired_fallbacks += state.fallbacks
                predictable = state is not None and len(state.times) >= min_ces
                dimm_id = state.dimm_id if state is not None else dimm_name(code)
                alarms.on_ue(dimm_id, row[0], predictable=predictable)
                last_scored.pop(code, None)
                report.ues += 1
            else:
                row = ev_list[index - n_ce - n_ue]
                code = int(row[1])
                state = states.get(code)
                if state is None:
                    state = extractor.state_for(dimm_name(code))
                    states[code] = state
                    state_configs[code] = configs.get(state.dimm_id)
                state.add_event_code(int(row[EV_KIND]), row[EV_T])
                report.mem_events += 1
        if pending:
            self._flush(pending, report)
        report.seconds = time.perf_counter() - start

        end_hour = float(all_times[order[-1]]) if all_times.size else 0.0
        alarms.finalize(end_hour)
        report.events = n_ce + n_ue + n_ev
        report.events_per_second = (
            report.events / report.seconds if report.seconds > 0 else 0.0
        )
        report.scores_per_second = (
            report.scored / report.seconds if report.seconds > 0 else 0.0
        )
        report.scored_dimms = len(scored_dimms)
        report.fallbacks = retired_fallbacks + sum(
            state.fallbacks for state in states.values()
        )
        report.alarms = alarms.summary(live_from)
        report.bus_counts = self.bus.counts()
        if verify:
            report.parity = {
                "checked": self.parity_checked,
                "mismatches": self.parity_mismatches,
            }
        return report

    def _flush(self, pending: list, report: StreamingReport) -> None:
        """Score one micro-batch and run the alarm decisions in order."""
        matrix = np.asarray([features for _, _, features in pending])
        t0 = time.perf_counter()
        scores = self.model.predict_proba(matrix)
        report.predict_seconds += time.perf_counter() - t0
        threshold = self.threshold
        alarm_from = self.alarm_from_hour
        hook = self.score_hook
        collect = self.collect_scores
        for (dimm_id, t, features), score in zip(pending, scores):
            value = float(score)
            if collect:
                self.score_log.append((dimm_id, t, value))
            if hook is not None:
                hook(dimm_id, t, features, value)
            if value >= threshold and t >= alarm_from:
                self.alarms.on_alarm(dimm_id, t, value)
        report.scored += len(pending)
        report.batches += 1
        pending.clear()
