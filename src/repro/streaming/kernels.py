"""Batched numpy replay kernels: the columnar fast path under replay.

The per-event replay engines (:class:`~repro.streaming.replay.ReplayEngine`
and :class:`~repro.fleetops.engine.FleetReplayEngine`) pay a Python loop
iteration — dict lookups, deque rotations, per-field appends — for every
record in the stream.  This module amortises that cost into column-wise
fleet-state updates: one :class:`ReplayKernel` per platform rebuilds the
whole campaign's per-DIMM windowed state as struct-of-arrays numpy tables
and precomputes every candidate CE's feature vector in a handful of
vectorized passes, so the replay loop shrinks to the *decisions* that are
inherently sequential (rescore throttling, incident blocking, micro-batch
flush boundaries, alarm-vs-failure ordering).

How it stays bit-for-bit exact
------------------------------

A replayed stream is globally time-sorted with the ``CE < UE < event`` tie
order of ``iter_stream``.  The incremental state a CE is served from is
therefore a *stream prefix*: the CEs of its DIMM since the last UE (a UE
pops the DIMM's state), the storms/repairs of that epoch that arrived
strictly before it, and the fitted (static) environment index.

* **Epoch segmentation** — every CE is assigned to a ``(dimm, UE-epoch)``
  segment: ``epoch = #{same-DIMM UEs with t_ue < t_ce}`` (a UE at exactly
  ``t_ce`` sorts *after* the CE, so strict comparison is exact).  Storms
  and repairs use ``#{t_ue <= t_ev}`` — events sort after UEs on ties.
  The segments are materialised as a
  :class:`~repro.telemetry.columnar.FleetArrays` in stream order, so the
  whole vectorized feature layer of the offline fleet engine applies.
* **Prefix-exact window ends** — instead of ``searchsorted(times, t+EPS)``
  (which would see same-timestamp CEs arriving *later* in the stream),
  the window end index is the CE's own position + 1 within its segment.
  Every extractor consumes ``[lo, hi)`` member indices, so this one
  substitution makes the batch computation equal
  ``FeaturePipeline.transform_one`` on the arrival prefix, bit for bit —
  including the int64 cell-key wrap in the spatial extractor.
* **Window starts** — resolved per sub-window with one fleet-wide
  :func:`~repro.telemetry.columnar.segmented_searchsorted` merge
  (identical float comparisons to per-DIMM ``np.searchsorted``).
* **Arrival-exact storm/repair bounds** — a storm or repair logged at
  exactly ``t`` sorts *after* the CE (tie order), so the per-event state
  has not seen it when the CE is served; :class:`PrefixWindows` therefore
  bounds event-count queries at ``t`` instead of the offline ``t + EPS``.
* **Fallback** — queries the columnar form cannot express (none arise on
  a well-formed stream) are recomputed through the exact per-event
  reference (:meth:`ReplayKernel.reference_for_query` —
  ``transform_one`` on the reconstructed arrival prefix) and counted as
  fallbacks.  The same reference backs ``verify_parity`` on the batched
  engine, and ``engine="per_event"`` remains the always-available full
  reference implementation.

Everything else (environment features ride the *fitted* server index;
static features are time-invariant per config) is prefix-independent by
construction.
"""

from __future__ import annotations

import numpy as np

from repro.features.windows import (
    EPS,
    SUB_WINDOWS_HOURS,
    DimmHistory,
    FleetWindows,
)
from repro.telemetry.columnar import (
    CE_DIMM,
    CE_SERVER,
    CE_T,
    EV_DIMM,
    EV_KIND,
    EV_T,
    REPAIR_CODES,
    STORM_CODE,
    UE_DIMM,
    UE_T,
    FleetArrays,
    segmented_searchsorted,
)

#: Flattened (sample, CE) pair budget per feature chunk — bounds transient
#: memory while keeping enough rows per numpy call to amortise dispatch.
DEFAULT_CHUNK_PAIRS = 2_000_000


class PrefixWindows(FleetWindows):
    """:class:`FleetWindows` with caller-supplied (prefix-exact) ``hi``.

    The offline fleet pass derives ``hi`` from ``searchsorted(t + EPS)``;
    replay needs the *arrival prefix* instead — the query CE's stream
    position + 1 within its segment — so same-timestamp CEs that arrive
    later are excluded exactly as the per-event state excludes them.
    Storm/repair count queries are likewise bounded at ``t`` (see
    :attr:`event_ends`); everything else (window starts, pair expansion)
    is inherited unchanged.
    """

    def __init__(
        self,
        fleet: FleetArrays,
        ts: np.ndarray,
        sample_seg: np.ndarray,
        hi: np.ndarray,
        *,
        lo_tables: dict[float, np.ndarray] | None = None,
        storm_counts: tuple[np.ndarray, np.ndarray] | None = None,
        repair_counts: np.ndarray | None = None,
        since_first: np.ndarray | None = None,
        gaps: np.ndarray | None = None,
        multi_prefix: np.ndarray | None = None,
    ):
        self.history = fleet
        self.ts = np.asarray(ts, dtype=float)
        self.sample_seg = np.asarray(sample_seg, dtype=np.int64)
        self.ends = self.ts + EPS
        self._base = fleet.ce_offsets[self.sample_seg]
        self.hi = np.asarray(hi, dtype=np.int64)
        # Pre-resolved boundary tables (one fleet-wide merge at kernel
        # build) — per-chunk queries then reduce to array gathers.  Any
        # window length not seeded falls back to the inherited resolve.
        self._lo: dict[float, np.ndarray] = (
            dict(lo_tables) if lo_tables else {}
        )
        self._pairs: dict[float, tuple[np.ndarray, np.ndarray]] = {}
        self._storm_counts = storm_counts
        self._repair_counts = repair_counts
        self._since_first = since_first
        self._gaps = gaps
        self._multi_prefix = multi_prefix

    def gap_array(self) -> np.ndarray:
        if self._gaps is not None:
            return self._gaps
        return super().gap_array()

    def multi_device_prefix(self) -> np.ndarray:
        if self._multi_prefix is not None:
            return self._multi_prefix
        return super().multi_device_prefix()

    @property
    def event_ends(self) -> np.ndarray:
        # Arrival-exact: an event at exactly t sorts after the CE, so the
        # per-event state serves without it — count strictly-before only.
        return self.ts

    def storm_counts(
        self, observation_hours: float
    ) -> tuple[np.ndarray, np.ndarray]:
        if self._storm_counts is not None:
            return self._storm_counts
        return super().storm_counts(observation_hours)

    def repair_counts(self, observation_hours: float) -> np.ndarray:
        if self._repair_counts is not None:
            return self._repair_counts
        return super().repair_counts(observation_hours)

    def since_first(self, observation_hours: float) -> np.ndarray:
        if self._since_first is not None:
            return self._since_first
        return super().since_first(observation_hours)


class ReplayKernel:
    """Precomputed columnar replay state for ONE platform's campaign.

    Builds, from the raw :class:`~repro.telemetry.columnar.TelemetryColumns`
    tables, everything the batched replay loop needs in O(sort) vectorized
    passes:

    * ``eligible`` / ``row_of`` / ``fallback`` — per CE-table row: is it a
      scoring candidate (``>= min_ces`` CEs in its epoch, past
      ``live_from_hour``, config known), its query row for
      :meth:`features_for`, and whether the exact reference path produced
      it;
    * :meth:`features_for` — the feature matrix of any set of candidate
      rows, bit-for-bit what ``IncrementalFeatureExtractor.serve`` would
      return at each candidate CE — computed lazily so only *served*
      candidates (a small fraction, after the rescore throttle and
      incident blocking) pay for extraction;
    * ``ue_predictable`` — per UE-table row, the per-event engine's
      ``state is not None and len(state.times) >= min_ces`` flag, derived
      from per-epoch CE/event counts.

    The sequential decisions (rescore gate, incident blocking, flush
    boundaries) stay in the engine's loop — the kernel is pure state.
    """

    def __init__(
        self,
        pipeline,
        columns,
        configs: dict,
        *,
        min_ces_before_scoring: int = 2,
        live_from_hour: float = 0.0,
        max_chunk_pairs: int = DEFAULT_CHUNK_PAIRS,
    ):
        self.pipeline = pipeline
        self.min_ces = int(min_ces_before_scoring)
        self.live_from = float(live_from_hour)
        self.max_chunk_pairs = int(max_chunk_pairs)

        ce_rows = columns.ces.rows()
        ue_rows = columns.ues.rows()
        ev_rows = columns.events.rows()
        self.n_ce = len(ce_rows)
        self.n_ue = len(ue_rows)
        self.n_ev = len(ev_rows)
        n_codes = max(len(columns.dimms), 1)

        self.ce_times = np.ascontiguousarray(ce_rows[:, CE_T]) if self.n_ce \
            else np.empty(0)
        self.ce_codes = (
            ce_rows[:, CE_DIMM].astype(np.int64)
            if self.n_ce else np.empty(0, dtype=np.int64)
        )
        self.ue_times = np.ascontiguousarray(ue_rows[:, UE_T]) if self.n_ue \
            else np.empty(0)
        self.ue_codes = (
            ue_rows[:, UE_DIMM].astype(np.int64)
            if self.n_ue else np.empty(0, dtype=np.int64)
        )
        ev_times = ev_rows[:, EV_T] if self.n_ev else np.empty(0)
        ev_codes = (
            ev_rows[:, EV_DIMM].astype(np.int64)
            if self.n_ev else np.empty(0, dtype=np.int64)
        )
        ev_kinds = (
            ev_rows[:, EV_KIND].astype(np.int64)
            if self.n_ev else np.empty(0, dtype=np.int64)
        )

        end_candidates = [
            float(a.max()) for a in (self.ce_times, self.ue_times, ev_times)
            if a.size
        ]
        self.end_hour = max(end_candidates, default=0.0)

        # -- per-DIMM UE timeline (epoch boundaries) -----------------------
        ue_sort = np.lexsort((self.ue_times, self.ue_codes))
        ue_sorted_t = self.ue_times[ue_sort]
        ue_counts = np.bincount(self.ue_codes, minlength=n_codes)
        ue_offsets = np.zeros(n_codes + 1, dtype=np.int64)
        np.cumsum(ue_counts, out=ue_offsets[1:])
        #: Epoch multiplier: (dimm, epoch) -> unique int64 key.
        mult = self.n_ue + 2

        # -- CE epoch assignment + stream-ordered segmentation -------------
        if self.n_ce:
            ce_epoch = segmented_searchsorted(
                ue_sorted_t, ue_offsets, self.ce_times, self.ce_codes
            )
            ce_key = self.ce_codes * mult + ce_epoch
            # Stable (key, time) sort: within a segment, CEs land in stream
            # order (time, then CE-table position — the merge's tie order).
            seg_order = np.lexsort((self.ce_times, ce_key))
            sorted_keys = ce_key[seg_order]
            new_seg = np.empty(self.n_ce, dtype=bool)
            new_seg[0] = True
            np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=new_seg[1:])
            seg_ids_sorted = np.cumsum(new_seg) - 1
            seg_starts = np.flatnonzero(new_seg)
            n_segs = seg_starts.size
            ce_offsets = np.empty(n_segs + 1, dtype=np.int64)
            ce_offsets[:-1] = seg_starts
            ce_offsets[-1] = self.n_ce
            uniq_keys = sorted_keys[seg_starts]
        else:
            seg_order = np.empty(0, dtype=np.int64)
            seg_ids_sorted = np.empty(0, dtype=np.int64)
            seg_starts = np.empty(0, dtype=np.int64)
            n_segs = 0
            ce_offsets = np.zeros(1, dtype=np.int64)
            uniq_keys = np.empty(0, dtype=np.int64)
        self._seg_order = seg_order
        self._seg_ids_sorted = seg_ids_sorted
        self.n_segs = n_segs

        #: CE-table row -> segment / global (stream-sorted) position.
        self.seg_of_ce = np.empty(self.n_ce, dtype=np.int64)
        self.seg_of_ce[seg_order] = seg_ids_sorted
        self._gpos_of_ce = np.empty(self.n_ce, dtype=np.int64)
        self._gpos_of_ce[seg_order] = np.arange(self.n_ce)

        # -- event epoch assignment (events sort after UEs on time ties) ---
        if self.n_ev:
            ev_epoch = segmented_searchsorted(
                ue_sorted_t, ue_offsets,
                np.nextafter(ev_times, np.inf), ev_codes,
            )
            ev_key = ev_codes * mult + ev_epoch
        else:
            ev_key = np.empty(0, dtype=np.int64)
        if self.n_ev and n_segs:
            pos = np.searchsorted(uniq_keys, ev_key)
            pos_c = np.minimum(pos, n_segs - 1)
            in_seg = uniq_keys[pos_c] == ev_key
        else:
            pos_c = np.empty(0, dtype=np.int64)
            in_seg = np.zeros(self.n_ev, dtype=bool)

        def _event_segments(keep: np.ndarray):
            mask = in_seg & keep
            seg = pos_c[mask[: pos_c.size]] if pos_c.size else np.empty(
                0, dtype=np.int64
            )
            times = ev_times[mask]
            order = np.lexsort((times, seg))
            offsets = np.zeros(n_segs + 1, dtype=np.int64)
            np.cumsum(np.bincount(seg, minlength=n_segs), out=offsets[1:])
            return np.ascontiguousarray(times[order]), offsets

        storm_times, storm_offsets = _event_segments(ev_kinds == STORM_CODE)
        repair_times, repair_offsets = _event_segments(
            np.isin(ev_kinds, list(REPAIR_CODES))
        )

        # -- segment metadata ----------------------------------------------
        dimm_name = columns.dimms.name
        server_name = columns.servers.name
        if n_segs:
            first_rows = seg_order[seg_starts]
            seg_dimm_codes = self.ce_codes[first_rows]
            seg_server_codes = ce_rows[first_rows, CE_SERVER].astype(np.int64)
        else:
            seg_dimm_codes = np.empty(0, dtype=np.int64)
            seg_server_codes = np.empty(0, dtype=np.int64)
        self.seg_dimm_ids = [dimm_name(int(c)) for c in seg_dimm_codes]
        seg_server_ids = [server_name(int(c)) for c in seg_server_codes]
        self.seg_configs = [configs.get(d) for d in self.seg_dimm_ids]
        config_ok = np.fromiter(
            (c is not None for c in self.seg_configs), dtype=bool,
            count=n_segs,
        ) if n_segs else np.empty(0, dtype=bool)

        # -- the stream-ordered fleet view ---------------------------------
        perm = ce_rows[seg_order] if self.n_ce else ce_rows.reshape(0, 13)

        def col(i, dtype=None):
            column = perm[:, i]
            if dtype is not None:
                return column.astype(dtype)
            return np.ascontiguousarray(column)

        self.fleet = FleetArrays(
            dimm_ids=self.seg_dimm_ids,
            server_ids=seg_server_ids,
            times=col(0),
            dq_count=col(1),
            beat_count=col(2),
            dq_interval=col(3),
            beat_interval=col(4),
            n_devices=col(5),
            error_bits=col(6),
            rows=col(7, np.int64),
            columns=col(8, np.int64),
            banks=col(9, np.int64),
            devices=col(10, np.int64),
            ce_offsets=ce_offsets,
            storm_times=storm_times,
            storm_offsets=storm_offsets,
            repair_times=repair_times,
            repair_offsets=repair_offsets,
            ue_hours=np.full(n_segs, np.nan),
        )

        # -- candidate mask (stream-sorted space) --------------------------
        times_sorted = self.fleet.times
        if self.n_ce:
            pos_in_seg = np.arange(self.n_ce) - np.repeat(
                seg_starts, np.diff(ce_offsets)
            )
            elig_sorted = (
                (pos_in_seg + 1 >= self.min_ces)
                & (times_sorted >= self.live_from)
                & config_ok[seg_ids_sorted]
            )
        else:
            elig_sorted = np.empty(0, dtype=bool)
        self._q_pos = np.flatnonzero(elig_sorted)
        self._q_ts = times_sorted[self._q_pos]
        self._q_seg = seg_ids_sorted[self._q_pos]
        self._q_hi = self._q_pos + 1
        n_q = self._q_pos.size

        #: CE-table masks / feature-row map the replay loop consumes.
        table_idx = seg_order[self._q_pos]
        self.eligible = np.zeros(self.n_ce, dtype=bool)
        self.eligible[table_idx] = True
        self.row_of = np.full(self.n_ce, -1, dtype=np.int64)
        self.row_of[table_idx] = np.arange(n_q)

        # -- fallback hook -------------------------------------------------
        # PrefixWindows' arrival-exact bounds make every well-formed query
        # expressible columnwise; the mask stays (all False) as the hook
        # through which inexpressible queries would be routed to
        # reference_for_query and surfaced in the report.
        self._hazard = np.zeros(n_q, dtype=bool)
        self.fallback = np.zeros(self.n_ce, dtype=bool)

        # -- per-UE predictability (per-event state reconstruction) --------
        if self.n_ue:
            sorted_ranks = np.arange(self.n_ue) - ue_offsets[
                self.ue_codes[ue_sort]
            ]
            ue_rank = np.empty(self.n_ue, dtype=np.int64)
            ue_rank[ue_sort] = sorted_ranks
            ue_key = self.ue_codes * mult + ue_rank
            if n_segs:
                p = np.searchsorted(uniq_keys, ue_key)
                p_c = np.minimum(p, n_segs - 1)
                has_ces = uniq_keys[p_c] == ue_key
                ce_cnt = np.where(has_ces, np.diff(ce_offsets)[p_c], 0)
            else:
                ce_cnt = np.zeros(self.n_ue, dtype=np.int64)
            if self.n_ev:
                # Any event (storm, repair, suppression, ...) instantiates
                # per-event state, so count them all.
                ev_key_sorted = np.sort(ev_key)
                ev_cnt = (
                    np.searchsorted(ev_key_sorted, ue_key, side="right")
                    - np.searchsorted(ev_key_sorted, ue_key, side="left")
                )
            else:
                ev_cnt = np.zeros(self.n_ue, dtype=np.int64)
            self.ue_predictable = (ce_cnt >= self.min_ces) & (
                (ce_cnt > 0) | (ev_cnt > 0)
            )
        else:
            self.ue_predictable = np.empty(0, dtype=bool)

        self.fallbacks_built = int(self._hazard.sum())
        self.n_features = len(pipeline.feature_names())
        self._static_rows: np.ndarray | None = None

    # -- feature computation ------------------------------------------------

    def _ensure_query_tables(self) -> None:
        """Resolve every query's window boundaries once, fleet-wide.

        Per-flush feature serving then reduces to array gathers plus the
        pair-level aggregation — no O(fleet) merges inside the hot loop.
        """
        if self._static_rows is not None:
            return
        pipeline = self.pipeline
        fleet = self.fleet
        # Static rows per segment (configs are time-invariant); segments
        # without a config never produce candidates, so zeros are inert.
        static_dim = len(pipeline.static.names())
        static_rows = np.zeros((self.n_segs, static_dim))
        ok = [i for i, c in enumerate(self.seg_configs) if c is not None]
        if ok:
            static_rows[ok] = pipeline.static.compute_rows(
                [self.seg_configs[i] for i in ok]
            )
        self._static_rows = static_rows
        env_codes = np.fromiter(
            (
                pipeline.environment.server_code(s)
                for s in fleet.server_ids
            ),
            dtype=np.int64,
            count=self.n_segs,
        )

        q_ts, q_seg, q_hi = self._q_ts, self._q_seg, self._q_hi
        n_q = q_ts.size
        # One fused merge resolves every window start the extractors ask for.
        lengths = tuple(dict.fromkeys(
            SUB_WINDOWS_HOURS
            + (
                24.0,
                pipeline.temporal.observation_hours,
                pipeline.spatial.observation_hours,
                pipeline.bitlevel.observation_hours,
                pipeline.config.labeling.observation_hours,
            )
        ))
        if n_q:
            found = segmented_searchsorted(
                fleet.times,
                fleet.ce_offsets,
                np.concatenate([q_ts - w for w in lengths]),
                np.tile(q_seg, len(lengths)),
            )
            base = fleet.ce_offsets[q_seg]
            self._lo_all = {
                w: found[j * n_q : (j + 1) * n_q] + base
                for j, w in enumerate(lengths)
            }
        else:
            empty = np.empty(0, dtype=np.int64)
            self._lo_all = {w: empty for w in lengths}

        # Arrival-exact storm / repair counts (events at exactly t have not
        # arrived when the CE is served — see PrefixWindows.event_ends).
        observation = pipeline.temporal.observation_hours

        def event_counts(times, offsets, with_total):
            if not times.size or not n_q:
                zeros = np.zeros(n_q)
                return (zeros, zeros) if with_total else zeros
            reps = 3 if with_total else 2
            queries = [q_ts, q_ts - observation]
            if with_total:
                queries.append(np.zeros(n_q))
            bounds = segmented_searchsorted(
                times, offsets, np.concatenate(queries), np.tile(q_seg, reps)
            )
            win = bounds[:n_q] - bounds[n_q : 2 * n_q]
            if not with_total:
                return win
            return win, bounds[:n_q] - bounds[2 * n_q :]

        self._storm_all = event_counts(
            fleet.storm_times, fleet.storm_offsets, with_total=True
        )
        self._repair_all = event_counts(
            fleet.repair_times, fleet.repair_offsets, with_total=False
        )
        # Every query is a CE of its own segment, so the segment is never
        # empty and since-first is a plain subtraction.
        self._since_first_all = (
            q_ts - fleet.times[fleet.ce_offsets[:-1][q_seg]]
            if n_q else np.empty(0)
        )
        # Environment features ride the fitted server index and the 5-day
        # own-CE count (transform's temporal column 3) — fully precomputable.
        own_5d = (
            q_hi - self._lo_all[SUB_WINDOWS_HOURS[3]]
        ).astype(float)
        self._env_rows_all = pipeline.environment.compute_fleet(
            env_codes[q_seg], own_5d, q_ts
        )
        # History-invariant arrays the extractors re-derive per batch.
        self._gap_array = np.append(np.diff(fleet.times), np.inf)
        self._multi_prefix = np.zeros(fleet.times.size + 1)
        np.cumsum(fleet.n_devices >= 2, out=self._multi_prefix[1:])

    def features_for(
        self, rows: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Feature matrix for candidate ``rows`` (indices into query space).

        Computed on demand so only *served* candidates pay for feature
        extraction — the rescore throttle and incident blocking typically
        discard most eligible CEs before scoring.  ``out`` (shape
        ``(len(rows), n_features)``) lets callers reuse a flush buffer.
        """
        rows = np.asarray(rows, dtype=np.int64)
        n = rows.size
        if out is None:
            out = np.empty((n, self.n_features))
        if not n:
            return out
        self._ensure_query_tables()
        pipeline = self.pipeline
        q_ts = self._q_ts[rows]
        q_seg = self._q_seg[rows]
        q_hi = self._q_hi[rows]
        storm_win, storm_total = self._storm_all

        # Chunk by cumulative observation-window membership so transient
        # pair expansions stay bounded regardless of storm-heavy DIMMs.
        observation = pipeline.config.labeling.observation_hours
        load = np.cumsum(q_hi - self._lo_all[observation][rows])
        start = 0
        while start < n:
            target = (load[start - 1] if start else 0) + self.max_chunk_pairs
            end = int(np.searchsorted(load, target, side="left")) + 1
            end = min(max(end, start + 1), n)
            sl = slice(start, end)
            rows_sl = rows[sl]
            windows = PrefixWindows(
                self.fleet, q_ts[sl], q_seg[sl], q_hi[sl],
                lo_tables={
                    w: arr[rows_sl] for w, arr in self._lo_all.items()
                },
                storm_counts=(storm_win[rows_sl], storm_total[rows_sl]),
                repair_counts=self._repair_all[rows_sl],
                since_first=self._since_first_all[rows_sl],
                gaps=self._gap_array,
                multi_prefix=self._multi_prefix,
            )
            temporal = pipeline.temporal.compute_batch(
                self.fleet, windows.ts, windows
            )
            out[sl] = np.hstack(
                [
                    temporal,
                    pipeline.spatial.compute_batch(
                        self.fleet, windows.ts, windows
                    ),
                    pipeline.bitlevel.compute_batch(
                        self.fleet, windows.ts, windows
                    ),
                    self._env_rows_all[rows_sl],
                    self._static_rows[q_seg[sl]],
                ]
            )
            start = end

        # Exact-path fallback for queries flagged as columnwise-inexpressible.
        if self._hazard.any():
            for i in np.flatnonzero(self._hazard[rows]).tolist():
                out[i] = self.reference_for_query(int(rows[i]))
        return out

    # -- exact reference ----------------------------------------------------

    def _prefix_history(self, gpos: int) -> DimmHistory:
        """The arrival-prefix :class:`DimmHistory` of stream position ``gpos``."""
        fleet = self.fleet
        seg = int(self._seg_ids_sorted[gpos])
        lo = int(fleet.ce_offsets[seg])
        hi = gpos + 1
        t = float(fleet.times[gpos])

        def arrived(times: np.ndarray, offsets: np.ndarray) -> np.ndarray:
            segment = times[offsets[seg] : offsets[seg + 1]]
            # Events at exactly t sort after the CE — strictly-before only.
            return segment[: np.searchsorted(segment, t, side="left")]

        return DimmHistory(
            dimm_id=self.seg_dimm_ids[seg],
            server_id=fleet.server_ids[seg],
            times=fleet.times[lo:hi],
            dq_count=fleet.dq_count[lo:hi],
            beat_count=fleet.beat_count[lo:hi],
            dq_interval=fleet.dq_interval[lo:hi],
            beat_interval=fleet.beat_interval[lo:hi],
            n_devices=fleet.n_devices[lo:hi],
            error_bits=fleet.error_bits[lo:hi],
            rows=fleet.rows[lo:hi],
            columns=fleet.columns[lo:hi],
            banks=fleet.banks[lo:hi],
            devices=fleet.devices[lo:hi],
            storm_times=arrived(fleet.storm_times, fleet.storm_offsets),
            repair_times=arrived(fleet.repair_times, fleet.repair_offsets),
        )

    def reference_for_query(self, query_row: int) -> np.ndarray:
        """``transform_one`` on the arrival prefix of candidate ``query_row``.

        This is the same reference the per-event engine's ``verify_parity``
        checks against (``transform_one(state.history_view(), config, t)``)
        — used both for the hazard fallback and for batched-mode parity
        verification.
        """
        gpos = int(self._q_pos[query_row])
        seg = int(self._q_seg[query_row])
        return self.pipeline.transform_one(
            self._prefix_history(gpos),
            self.seg_configs[seg],
            float(self._q_ts[query_row]),
        )

    def reference_for_ce(self, ce_index: int) -> np.ndarray:
        """``transform_one`` on the arrival prefix of CE-table row ``ce_index``."""
        gpos = int(self._gpos_of_ce[ce_index])
        seg = int(self.seg_of_ce[ce_index])
        return self.pipeline.transform_one(
            self._prefix_history(gpos),
            self.seg_configs[seg],
            float(self.ce_times[ce_index]),
        )
