"""Incremental per-DIMM windowed feature state for streaming serving.

The offline extractors (:mod:`repro.features.temporal` / ``spatial`` /
``bitlevel`` / ``static``) answer "what does the window ``[t - w, t + EPS)``
look like" by re-scanning a DIMM's history arrays on every scored CE.  This
module keeps the answer *current* instead: every windowed aggregate the
pipeline serves is maintained by delta add/evict as CEs arrive, so a scored
CE costs amortized O(1) bookkeeping (plus one vectorised pass over the tiny
trailing-day window for the burstiness feature) rather than a full
re-extraction.

The contract is strict bit-for-bit parity:
:meth:`IncrementalFeatureExtractor.serve` returns exactly the vector
:meth:`repro.features.pipeline.FeaturePipeline.transform_one` would return
for the same history prefix, at every event — enforced by the streaming
parity suite and the replay engine's ``verify_parity`` mode.  Everything is
exact because every maintained statistic is either an integer count, a
comparison-stable min/max over unchanged float values, or an arithmetic
expression evaluated with the identical operations:

* window boundaries are two-pointer cursors whose advance condition
  (``times[p] < t - w``) is the same comparison ``np.searchsorted(...,
  side="left")`` performs;
* min inter-arrival is a monotonic deque over the same float gaps
  ``np.diff`` produces;
* spatial distinct/max/fault statistics are counting multisets with a
  count-frequency ladder for exact max maintenance under eviction;
* bit-level max/mode come from small dense histograms (the values are tiny
  non-negative integers), and the error-bit mean divides an exactly
  representable integer sum;
* the environment (sibling-pressure) feature advances per-server cursors
  over the *fitted* server index instead of re-running binary searches.

Out-of-order arrivals are tolerated: the state flags itself dirty and
rebuilds (stable re-sort, counters replayed) on the next computation, and a
query at a timestamp behind the stream falls back to the reference
``transform_one`` path (counted in :attr:`IncrementalWindowState.fallbacks`).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.features.windows import EPS, SUB_WINDOWS_HOURS, DimmHistory, REPAIR_KINDS
from repro.telemetry.columnar import REPAIR_CODES, STORM_CODE
from repro.telemetry.records import CERecord, MemEventKind, MemEventRecord

#: 2^20 per hierarchy level — the same packing ``spatial._compose`` uses, so
#: composed keys here equal the offline composite keys exactly.
_LEVEL = 1_048_576

#: The offline extractors build composite keys in int64, and the four-level
#: *cell* key overflows for device indices >= 8 (17 * 2^60 wraps) — silently
#: aliasing cells across devices, identically in the per-sample and batch
#: engines.  Bit-for-bit parity therefore requires the same equality
#: classes: the incremental cell multiset keys are reduced modulo 2^64
#: (unsigned wrap ≡ int64 wrap for equality).  The three-level row/column
#: keys stay well inside int64 and are exact.
_MASK64 = (1 << 64) - 1


def _hist_add(hist: list, value: int) -> None:
    if value >= len(hist):
        hist.extend([0] * (value + 1 - len(hist)))
    hist[value] += 1


def _max_and_mode(hist: list) -> tuple[float, float]:
    """(max value present, most frequent value with ties toward larger)."""
    best_count = 0
    mode = 0
    max_value = 0
    for value in range(len(hist) - 1, -1, -1):
        count = hist[value]
        if count:
            if max_value == 0 and best_count == 0:
                max_value = value
            if count > best_count:
                best_count = count
                mode = value
    return float(max_value), float(mode)


class IncrementalWindowState:
    """Every windowed aggregate of one DIMM, kept current per event.

    Create through :meth:`IncrementalFeatureExtractor.state_for`; feed with
    :meth:`add_ce` / :meth:`add_storm` / :meth:`add_repair` (or the record /
    columnar-row conveniences) and read feature vectors through
    :meth:`IncrementalFeatureExtractor.serve`.
    """

    def __init__(self, extractor: "IncrementalFeatureExtractor", dimm_id: str,
                 server_id: str = ""):
        self._x = extractor
        self.dimm_id = dimm_id
        self.server_id = server_id
        self.fallbacks = 0
        #: Late-arrival recoveries: count of full :meth:`_rebuild` passes
        #: (a health counter — out-of-order telemetry made the incremental
        #: cursors unsound and the state re-sorted + replayed itself).
        self.rebuilds = 0
        # Raw per-CE storage (arrival order).
        self.times: list[float] = []
        self.rows_data: list[tuple] = []
        self.first_time: float | None = None
        self.storm_times: list[float] = []
        self.repair_times: list[float] = []
        self._negative_storms = 0
        self._dirty = False
        self._last_t = float("-inf")
        # Window cursors: one start index per distinct window length.
        self._lo = [0] * len(extractor.windows)
        self._add_ptr = 0
        self._storm_lo = 0
        self._storm_hi = 0
        self._repair_lo = 0
        self._repair_hi = 0
        # Sliding minimum over inter-arrival gaps (index, gap), increasing.
        self._gaps: deque[tuple[int, float]] = deque()
        # Bit-level histograms + windowed pattern counters.
        self._h_dq: list[int] = []
        self._h_beat: list[int] = []
        self._h_dqi: list[int] = []
        self._h_bti: list[int] = []
        self._h_ebits: list[int] = []
        self._ebits_sum = 0
        self._risky4 = 0
        self._whole_chip = 0
        self._wide_dq = 0
        self._multi_dev = 0
        # Spatial counting multisets (observation window).  ``_cell`` keys
        # are int64-wrapped (see _MASK64) to mirror the offline cell
        # statistics; ``_rowcell`` keeps the exact (row line, column) pairs
        # that drive the distinct-cross counts.
        self._cell: dict[int, int] = {}
        self._cell_freq: dict[int, int] = {}
        self._cell_max = 0
        self._rowcell: dict[int, int] = {}
        self._row: dict[int, int] = {}
        self._row_freq: dict[int, int] = {}
        self._row_max = 0
        self._row_cross: dict[int, int] = {}  # distinct columns per row line
        self._col: dict[int, int] = {}
        self._col_freq: dict[int, int] = {}
        self._col_max = 0
        self._col_cross: dict[int, int] = {}  # distinct rows per column line
        self._colcell: dict[int, int] = {}  # (column line, row) multiset
        self._bankc: dict[int, int] = {}
        self._devc: dict[int, int] = {}
        self._faulty_rows: set[int] = set()
        self._faulty_cols: set[int] = set()
        self._faulty_row_banks: dict[int, int] = {}
        self._faulty_col_banks: dict[int, int] = {}
        self._banks_both = 0
        # Environment cursors over the fitted server index (lazy).
        self._env_times: list[float] | None = None
        self._env_resolved = False
        self._env_lo = 0
        self._env_hi = 0

    def __len__(self) -> int:
        return len(self.times)

    # -- ingestion ---------------------------------------------------------

    def add_ce(self, t: float, dq_count, beat_count, dq_interval,
               beat_interval, n_devices, error_bits, row, column, bank,
               device) -> None:
        """Append one CE from raw field values (floats or ints)."""
        times = self.times
        if times:
            if t < times[-1]:
                self._dirty = True
        else:
            self.first_time = t
        times.append(t)
        self.rows_data.append((
            t, int(dq_count), int(beat_count), int(dq_interval),
            int(beat_interval), int(n_devices), int(error_bits),
            int(row), int(column), int(bank), int(device),
        ))

    def add_ce_row(self, t: float, row: tuple) -> None:
        """Append one pre-decoded CE row (the fleet engine's fast path).

        ``row`` must already be the exact ``rows_data`` tuple —
        ``(t, dq_count, beat_count, dq_interval, beat_interval, n_devices,
        error_bits, row, column, bank, device)`` with integer fields as
        Python ints.  Bulk columnar decodes (``astype(int64).tolist()``)
        truncate exactly like the per-field ``int()`` of :meth:`add_ce`,
        so the state stays bit-for-bit identical.
        """
        times = self.times
        if times:
            if t < times[-1]:
                self._dirty = True
        else:
            self.first_time = t
        times.append(t)
        self.rows_data.append(row)

    def add_ce_record(self, ce: CERecord) -> None:
        if not self.server_id:
            self.server_id = ce.server_id
        self.add_ce(
            ce.timestamp_hours, ce.dq_count, ce.beat_count, ce.dq_interval,
            ce.beat_interval, len(ce.devices), ce.error_bit_count,
            ce.row, ce.column, ce.bank, ce.devices[0] if ce.devices else 0,
        )

    def add_storm(self, t: float) -> None:
        st = self.storm_times
        if st and t < st[-1]:
            self._dirty = True
        if t < 0.0:
            self._negative_storms += 1
        st.append(t)

    def add_repair(self, t: float) -> None:
        rt = self.repair_times
        if rt and t < rt[-1]:
            self._dirty = True
        rt.append(t)

    def add_event_record(self, event: MemEventRecord) -> None:
        if event.kind is MemEventKind.CE_STORM:
            self.add_storm(event.timestamp_hours)
        elif event.kind in REPAIR_KINDS:
            self.add_repair(event.timestamp_hours)

    def add_event_code(self, kind_code: int, t: float) -> None:
        """Columnar-row ingestion (the replay engine's event path)."""
        if kind_code == STORM_CODE:
            self.add_storm(t)
        elif kind_code in REPAIR_CODES:
            self.add_repair(t)

    # -- reference view ----------------------------------------------------

    def history_view(self) -> DimmHistory:
        """Accumulated state as a :class:`DimmHistory` (reference paths)."""
        n = len(self.rows_data)
        table = (
            np.asarray(self.rows_data, dtype=float).reshape(n, 11)
            if n else np.empty((0, 11))
        )
        if n and self._dirty:
            order = np.argsort(table[:, 0], kind="stable")
            table = table[order]
        return DimmHistory(
            dimm_id=self.dimm_id,
            server_id=self.server_id,
            times=table[:, 0].copy(),
            dq_count=table[:, 1].copy(),
            beat_count=table[:, 2].copy(),
            dq_interval=table[:, 3].copy(),
            beat_interval=table[:, 4].copy(),
            n_devices=table[:, 5].copy(),
            error_bits=table[:, 6].copy(),
            rows=table[:, 7].astype(np.int64),
            columns=table[:, 8].astype(np.int64),
            banks=table[:, 9].astype(np.int64),
            devices=table[:, 10].astype(np.int64),
            storm_times=np.asarray(sorted(self.storm_times), dtype=float),
            repair_times=np.asarray(sorted(self.repair_times), dtype=float),
        )

    # -- maintenance -------------------------------------------------------

    def _rebuild(self) -> None:
        """Recover from out-of-order arrivals: stable re-sort, replay counters."""
        self.rebuilds += 1
        order = sorted(range(len(self.rows_data)),
                       key=lambda i: self.rows_data[i][0])
        self.rows_data = [self.rows_data[i] for i in order]
        self.times = [row[0] for row in self.rows_data]
        self.first_time = self.times[0] if self.times else None
        self.storm_times.sort()
        self.repair_times.sort()
        fresh = IncrementalWindowState(self._x, self.dimm_id, self.server_id)
        for name in (
            "_lo", "_add_ptr", "_storm_lo", "_storm_hi", "_repair_lo",
            "_repair_hi", "_gaps", "_h_dq", "_h_beat", "_h_dqi", "_h_bti",
            "_h_ebits", "_ebits_sum", "_risky4", "_whole_chip", "_wide_dq",
            "_multi_dev", "_cell", "_cell_freq", "_cell_max", "_rowcell",
            "_row",
            "_row_freq", "_row_max", "_row_cross", "_col", "_col_freq",
            "_col_max", "_col_cross", "_colcell", "_bankc", "_devc",
            "_faulty_rows", "_faulty_cols", "_faulty_row_banks",
            "_faulty_col_banks", "_banks_both", "_env_lo", "_env_hi",
        ):
            setattr(self, name, getattr(fresh, name))
        self._last_t = float("-inf")
        self._dirty = False

    def _absorb(self, n: int) -> None:
        """Fold CEs ``[add_ptr, n)`` into the observation-window aggregates."""
        times = self.times
        gaps = self._gaps
        h_dq, h_beat = self._h_dq, self._h_beat
        h_dqi, h_bti, h_ebits = self._h_dqi, self._h_bti, self._h_ebits
        for i in range(self._add_ptr, n):
            (t, dq, beat, dqi, bti, ndev, ebits,
             row, col, bank, dev0) = self.rows_data[i]
            if i:
                gap = t - times[i - 1]
                while gaps and gaps[-1][1] >= gap:
                    gaps.pop()
                gaps.append((i - 1, gap))
            _hist_add(h_dq, dq)
            _hist_add(h_beat, beat)
            _hist_add(h_dqi, dqi)
            _hist_add(h_bti, bti)
            _hist_add(h_ebits, ebits)
            self._ebits_sum += ebits
            if dq == 2 and bti == 4:
                self._risky4 += 1
            if dq == 4 and beat >= 5:
                self._whole_chip += 1
            if dq >= 3:
                self._wide_dq += 1
            if ndev >= 2:
                self._multi_dev += 1

            bank_key = dev0 * _LEVEL + bank
            row_key = bank_key * _LEVEL + row
            col_key = bank_key * _LEVEL + col
            cell_key = (row_key * _LEVEL + col) & _MASK64
            rowcell_key = row_key * _LEVEL + col
            colcell_key = col_key * _LEVEL + row

            self._devc[dev0] = self._devc.get(dev0, 0) + 1
            self._bankc[bank_key] = self._bankc.get(bank_key, 0) + 1

            count = self._rowcell.get(rowcell_key, 0)
            self._rowcell[rowcell_key] = count + 1
            if count == 0:
                self._row_cross[row_key] = self._row_cross.get(row_key, 0) + 1

            count = self._cell.get(cell_key, 0)
            self._cell[cell_key] = count + 1
            freq = self._cell_freq
            if count:
                if freq[count] == 1:
                    del freq[count]
                else:
                    freq[count] -= 1
            freq[count + 1] = freq.get(count + 1, 0) + 1
            if count + 1 > self._cell_max:
                self._cell_max = count + 1

            count = self._colcell.get(colcell_key, 0)
            self._colcell[colcell_key] = count + 1
            if count == 0:
                self._col_cross[col_key] = self._col_cross.get(col_key, 0) + 1

            count = self._row.get(row_key, 0)
            self._row[row_key] = count + 1
            freq = self._row_freq
            if count:
                if freq[count] == 1:
                    del freq[count]
                else:
                    freq[count] -= 1
            freq[count + 1] = freq.get(count + 1, 0) + 1
            if count + 1 > self._row_max:
                self._row_max = count + 1
            self._update_row_fault(row_key, bank_key)

            count = self._col.get(col_key, 0)
            self._col[col_key] = count + 1
            freq = self._col_freq
            if count:
                if freq[count] == 1:
                    del freq[count]
                else:
                    freq[count] -= 1
            freq[count + 1] = freq.get(count + 1, 0) + 1
            if count + 1 > self._col_max:
                self._col_max = count + 1
            self._update_col_fault(col_key, bank_key)
        self._add_ptr = n

    def _evict(self, i: int) -> None:
        """Remove CE ``i``'s contribution as it leaves the observation window."""
        (_, dq, beat, dqi, bti, ndev, ebits,
         row, col, bank, dev0) = self.rows_data[i]
        self._h_dq[dq] -= 1
        self._h_beat[beat] -= 1
        self._h_dqi[dqi] -= 1
        self._h_bti[bti] -= 1
        self._h_ebits[ebits] -= 1
        self._ebits_sum -= ebits
        if dq == 2 and bti == 4:
            self._risky4 -= 1
        if dq == 4 and beat >= 5:
            self._whole_chip -= 1
        if dq >= 3:
            self._wide_dq -= 1
        if ndev >= 2:
            self._multi_dev -= 1

        bank_key = dev0 * _LEVEL + bank
        row_key = bank_key * _LEVEL + row
        col_key = bank_key * _LEVEL + col
        cell_key = (row_key * _LEVEL + col) & _MASK64
        rowcell_key = row_key * _LEVEL + col
        colcell_key = col_key * _LEVEL + row

        count = self._devc[dev0]
        if count == 1:
            del self._devc[dev0]
        else:
            self._devc[dev0] = count - 1
        count = self._bankc[bank_key]
        if count == 1:
            del self._bankc[bank_key]
        else:
            self._bankc[bank_key] = count - 1

        count = self._rowcell[rowcell_key]
        if count == 1:
            del self._rowcell[rowcell_key]
            cross = self._row_cross[row_key]
            if cross == 1:
                del self._row_cross[row_key]
            else:
                self._row_cross[row_key] = cross - 1
        else:
            self._rowcell[rowcell_key] = count - 1

        count = self._cell[cell_key]
        if count == 1:
            del self._cell[cell_key]
        else:
            self._cell[cell_key] = count - 1
        freq = self._cell_freq
        if freq[count] == 1:
            del freq[count]
            if count == self._cell_max:
                self._cell_max = count - 1
        else:
            freq[count] -= 1
        if count > 1:
            freq[count - 1] = freq.get(count - 1, 0) + 1

        count = self._colcell[colcell_key]
        if count == 1:
            del self._colcell[colcell_key]
            cross = self._col_cross[col_key]
            if cross == 1:
                del self._col_cross[col_key]
            else:
                self._col_cross[col_key] = cross - 1
        else:
            self._colcell[colcell_key] = count - 1

        count = self._row[row_key]
        if count == 1:
            del self._row[row_key]
        else:
            self._row[row_key] = count - 1
        freq = self._row_freq
        if freq[count] == 1:
            del freq[count]
            if count == self._row_max:
                self._row_max = count - 1
        else:
            freq[count] -= 1
        if count > 1:
            freq[count - 1] = freq.get(count - 1, 0) + 1
        self._update_row_fault(row_key, bank_key)

        count = self._col[col_key]
        if count == 1:
            del self._col[col_key]
        else:
            self._col[col_key] = count - 1
        freq = self._col_freq
        if freq[count] == 1:
            del freq[count]
            if count == self._col_max:
                self._col_max = count - 1
        else:
            freq[count] -= 1
        if count > 1:
            freq[count - 1] = freq.get(count - 1, 0) + 1
        self._update_col_fault(col_key, bank_key)

    def _update_row_fault(self, row_key: int, bank_key: int) -> None:
        faulty = (
            self._row.get(row_key, 0) >= self._x.line_threshold
            and self._row_cross.get(row_key, 0) >= self._x.min_distinct
        )
        if faulty:
            if row_key not in self._faulty_rows:
                self._faulty_rows.add(row_key)
                banks = self._faulty_row_banks
                count = banks.get(bank_key, 0) + 1
                banks[bank_key] = count
                if count == 1 and bank_key in self._faulty_col_banks:
                    self._banks_both += 1
        elif row_key in self._faulty_rows:
            self._faulty_rows.discard(row_key)
            banks = self._faulty_row_banks
            count = banks[bank_key] - 1
            if count:
                banks[bank_key] = count
            else:
                del banks[bank_key]
                if bank_key in self._faulty_col_banks:
                    self._banks_both -= 1

    def _update_col_fault(self, col_key: int, bank_key: int) -> None:
        faulty = (
            self._col.get(col_key, 0) >= self._x.line_threshold
            and self._col_cross.get(col_key, 0) >= self._x.min_distinct
        )
        if faulty:
            if col_key not in self._faulty_cols:
                self._faulty_cols.add(col_key)
                banks = self._faulty_col_banks
                count = banks.get(bank_key, 0) + 1
                banks[bank_key] = count
                if count == 1 and bank_key in self._faulty_row_banks:
                    self._banks_both += 1
        elif col_key in self._faulty_cols:
            self._faulty_cols.discard(col_key)
            banks = self._faulty_col_banks
            count = banks[bank_key] - 1
            if count:
                banks[bank_key] = count
            else:
                del banks[bank_key]
                if bank_key in self._faulty_row_banks:
                    self._banks_both -= 1

    # -- feature computation -----------------------------------------------

    def windowed_features(self, t: float) -> list[float] | None:
        """The window-dependent feature blocks at ``t`` (temporal, spatial,
        bit-level, environment — everything but the static block), or
        ``None`` when the query regresses behind the stream and the caller
        must take the reference path.
        """
        if self._dirty:
            self._rebuild()
        times = self.times
        n = len(times)
        if t < self._last_t or (n and t < times[-1]):
            return None
        self._last_t = t
        x = self._x
        observation = x.observation

        if self._add_ptr < n:
            self._absorb(n)

        lo = self._lo
        for w_idx in x.plain_windows:
            boundary = t - x.windows[w_idx]
            p = lo[w_idx]
            while p < n and times[p] < boundary:
                p += 1
            lo[w_idx] = p
        boundary = t - observation
        p = lo[x.obs_idx]
        while p < n and times[p] < boundary:
            self._evict(p)
            p += 1
        lo[x.obs_idx] = p

        lo_obs = lo[x.obs_idx]
        count_obs = n - lo_obs
        gaps = self._gaps
        while gaps and gaps[0][0] < lo_obs:
            gaps.popleft()

        # -- temporal ------------------------------------------------------
        counts = [float(n - lo[w_idx]) for w_idx in x.sub_idx]
        count_5d = float(count_obs)
        since_first = (
            t - self.first_time if self.first_time is not None
            else float(observation)
        )
        since_last = t - times[-1] if count_obs else float(observation)
        if count_obs >= 2:
            mean_gap = float((times[-1] - times[lo_obs]) / (count_obs - 1))
            min_gap = gaps[0][1]
        else:
            mean_gap = float(observation)
            min_gap = float(observation)

        lo_day = lo[x.day_idx]
        if lo_day < n:
            base = t - 24.0
            hourly = [0] * 25
            max_hourly = 0
            for tt in times[lo_day:]:
                bucket = int(tt - base)  # == floor: operand is non-negative
                count = hourly[bucket] + 1
                hourly[bucket] = count
                if count > max_hourly:
                    max_hourly = count
            max_hourly = float(max_hourly)
        else:
            max_hourly = 0.0

        rate_5d = count_obs / observation
        rate_1d = (n - lo_day) / 24.0
        acceleration = rate_1d / rate_5d if rate_5d > 0 else 0.0

        end = t + EPS
        st = self.storm_times
        p = self._storm_hi
        m = len(st)
        while p < m and st[p] < end:
            p += 1
        self._storm_hi = p
        q = self._storm_lo
        while q < p and st[q] < boundary:  # boundary == t - observation
            q += 1
        self._storm_lo = q
        rt = self.repair_times
        rp = self._repair_hi
        m = len(rt)
        while rp < m and rt[rp] < end:
            rp += 1
        self._repair_hi = rp
        rq = self._repair_lo
        while rq < rp and rt[rq] < boundary:
            rq += 1
        self._repair_lo = rq

        features = counts
        features += [
            rate_5d,
            float(np.log1p(count_5d)),
            float(since_first),
            float(since_last),
            mean_gap,
            min_gap,
            max_hourly,
            float(p - q),
            float(p - self._negative_storms),
            float(rp - rq),
            acceleration,
        ]

        # -- spatial -------------------------------------------------------
        if count_obs:
            features += [
                float(len(self._row)),
                float(len(self._col)),
                float(len(self._bankc)),
                float(len(self._devc)),
                float(self._cell_max),
                float(self._row_max),
                float(self._col_max),
                float(self._cell_max >= x.cell_threshold),
                float(bool(self._faulty_rows)),
                float(bool(self._faulty_cols)),
                float(self._banks_both > 0),
                float(self._multi_dev > 0),
            ]
        else:
            features += [0.0] * 12

        # -- bit-level -----------------------------------------------------
        if count_obs:
            max_dq, mode_dq = _max_and_mode(self._h_dq)
            max_beat, mode_beat = _max_and_mode(self._h_beat)
            max_dqi, _ = _max_and_mode(self._h_dqi)
            max_bti, mode_bti = _max_and_mode(self._h_bti)
            max_ebits, _ = _max_and_mode(self._h_ebits)
            features += [
                max_dq,
                mode_dq,
                max_beat,
                mode_beat,
                max_dqi,
                max_bti,
                mode_bti,
                float(self._risky4),
                float(self._whole_chip),
                float(self._wide_dq),
                float(self._multi_dev),
                float(self._ebits_sum / count_obs),
                max_ebits,
            ]
        else:
            features += [0.0] * 13

        # -- environment ---------------------------------------------------
        if not self._env_resolved:
            self._env_times = x.env_times_list(self.server_id)
            self._env_resolved = True
        et = self._env_times
        if et is None:
            features += [0.0, 0.0]
        else:
            m = len(et)
            p = self._env_hi
            while p < m and et[p] < end:
                p += 1
            self._env_hi = p
            q = self._env_lo
            while q < p and et[q] < boundary:
                q += 1
            self._env_lo = q
            sibling = max(0.0, float(p - q) - counts[x.own_count_pos])
            features += [sibling, float(sibling > 0)]
        return features


class IncrementalFeatureExtractor:
    """Streaming twin of a fitted :class:`FeaturePipeline`.

    Binds the pipeline's extractor parameters, fitted environment index and
    static encoder once; :meth:`serve` then produces per-event feature
    vectors from :class:`IncrementalWindowState` aggregates, bit-for-bit
    equal to ``pipeline.transform_one`` on the same history prefix.
    """

    def __init__(self, pipeline):
        if not pipeline._fitted:
            raise RuntimeError("pipeline not fitted")
        self.pipeline = pipeline
        observation = float(pipeline.temporal.observation_hours)
        for extractor in (pipeline.spatial, pipeline.bitlevel,
                          pipeline.environment):
            if float(extractor.observation_hours) != observation:
                raise ValueError(
                    "incremental serving requires one shared observation "
                    "window across extractors"
                )
        self.observation = observation
        self.windows = list(dict.fromkeys(
            [float(w) for w in SUB_WINDOWS_HOURS] + [observation, 24.0]
        ))
        index = {w: i for i, w in enumerate(self.windows)}
        self.sub_idx = [index[float(w)] for w in SUB_WINDOWS_HOURS]
        self.obs_idx = index[observation]
        self.day_idx = index[24.0]
        self.plain_windows = [i for i in range(len(self.windows))
                              if i != self.obs_idx]
        #: Position (within the sub-window counts) of the count the
        #: environment extractor subtracts as the DIMM's own contribution —
        #: the 120 h sub-window, exactly as ``transform_one`` wires it.
        self.own_count_pos = SUB_WINDOWS_HOURS.index(120.0)
        self.cell_threshold = pipeline.spatial.cell_threshold
        self.line_threshold = pipeline.spatial.line_threshold
        self.min_distinct = pipeline.spatial.min_distinct
        self.env = pipeline.environment
        self.static = pipeline.static
        self.n_features = len(pipeline.feature_names())
        self._static_cache: dict = {}
        self._env_lists: dict[str, list[float] | None] = {}

    def state_for(self, dimm_id: str, server_id: str = "") -> IncrementalWindowState:
        return IncrementalWindowState(self, dimm_id, server_id)

    def env_times_list(self, server_id: str) -> list[float] | None:
        """The fitted server CE times as a shared plain-float list."""
        cached = self._env_lists.get(server_id, _UNSET)
        if cached is _UNSET:
            times = self.env.fitted_times(server_id)
            cached = times.tolist() if times is not None else None
            self._env_lists[server_id] = cached
        return cached

    def static_block(self, config) -> list[float]:
        """Cached ``static.compute(config)`` (configs are time-invariant)."""
        block = self._static_cache.get(config)
        if block is None:
            block = self.static.compute(config)
            self._static_cache[config] = block
        return block

    def serve(self, state: IncrementalWindowState, config, t: float) -> np.ndarray:
        """Feature vector of ``state`` at instant ``t``.

        Bit-for-bit equal to ``pipeline.transform_one(history, config, t)``
        on the equivalent history.  Queries behind the stream head fall back
        to that reference path (counted in ``state.fallbacks``).
        """
        windowed = state.windowed_features(t)
        if windowed is None:
            state.fallbacks += 1
            return self.pipeline.transform_one(state.history_view(), config, t)
        return np.asarray(windowed + self.static_block(config), dtype=float)


#: Sentinel distinguishing "not cached" from a cached ``None``.
_UNSET = object()
