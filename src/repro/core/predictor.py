"""High-level facade: the paper's contribution behind one class.

:class:`MemoryFailurePredictor` wraps the full per-platform pipeline —
feature extraction, model training, operating-point selection, DIMM-level
scoring — behind fit/predict, so downstream users (and the examples) don't
have to assemble the pieces by hand.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.evaluation.experiment import MODEL_BUILDERS, ModelResult, PlatformExperiment
from repro.evaluation.protocol import ExperimentProtocol
from repro.features.pipeline import FeaturePipeline, FeaturePipelineConfig
from repro.features.sampling import aggregate_by_dimm
from repro.features.windows import DimmHistory
from repro.simulator.fleet import SimulationResult
from repro.telemetry.log_store import LogStore


@dataclass
class DimmRiskAssessment:
    """One DIMM's current failure-risk score."""

    dimm_id: str
    score: float
    flagged: bool


@dataclass
class MemoryFailurePredictor:
    """Per-platform memory-failure predictor with the paper's protocol.

    Typical use::

        predictor = MemoryFailurePredictor(platform="intel_purley",
                                           algorithm="lightgbm")
        result = predictor.fit_evaluate(simulation)   # Table-II style cell
        risks = predictor.assess(store, at_hour=2000.0)
    """

    platform: str
    algorithm: str = "lightgbm"
    protocol: ExperimentProtocol = field(default_factory=ExperimentProtocol)
    _experiment: PlatformExperiment | None = None
    _model: object | None = None
    _threshold: float | None = None
    _pipeline: FeaturePipeline | None = None

    def fit_evaluate(self, simulation: SimulationResult) -> ModelResult:
        """Train on the campaign's training period, evaluate on the rest."""
        if simulation.platform.name != self.platform:
            raise ValueError(
                f"predictor built for {self.platform!r}, got simulation of "
                f"{simulation.platform.name!r}"
            )
        self._experiment = PlatformExperiment.prepare(simulation, self.protocol)
        builder = MODEL_BUILDERS[self.algorithm]
        self._model = builder(
            self._experiment.samples.feature_names, self.protocol.seed
        )
        result = self._experiment.run_model(self.algorithm, model=self._model)
        self._threshold = result.threshold if result.supported else None
        self._pipeline = FeaturePipeline(
            FeaturePipelineConfig(
                labeling=self.protocol.labeling, sampling=self.protocol.sampling
            )
        )
        self._pipeline.fit(simulation.store)
        return result

    @property
    def is_fitted(self) -> bool:
        return self._model is not None

    def score_samples(self, X: np.ndarray) -> np.ndarray:
        """Raw scores for pre-built feature rows."""
        if self._model is None:
            raise RuntimeError("predictor not fitted")
        return self._model.predict_proba(X)

    def assess(
        self, store: LogStore, at_hour: float, min_ces: int = 2
    ) -> list[DimmRiskAssessment]:
        """Score every DIMM with enough CE history at a point in time."""
        if self._model is None or self._pipeline is None:
            raise RuntimeError("predictor not fitted")
        threshold = self._threshold if self._threshold is not None else 0.5
        assessments = []
        for dimm_id in store.dimm_ids_with_ces():
            ces = store.ces_for_dimm(dimm_id, end_hour=at_hour)
            if len(ces) < min_ces:
                continue
            if store.ues_for_dimm(dimm_id, end_hour=at_hour):
                continue  # already failed
            history = DimmHistory.from_records(
                dimm_id, ces, store.events_for_dimm(dimm_id, end_hour=at_hour)
            )
            features = self._pipeline.transform_one(
                history, store.config_for(dimm_id), at_hour
            )
            score = float(self._model.predict_proba(features.reshape(1, -1))[0])
            assessments.append(
                DimmRiskAssessment(
                    dimm_id=dimm_id, score=score, flagged=score >= threshold
                )
            )
        assessments.sort(key=lambda a: -a.score)
        return assessments

    def evaluate_holdout(self) -> tuple[np.ndarray, np.ndarray]:
        """(labels, scores) of the held-out test DIMMs from fit_evaluate."""
        if self._experiment is None or self._model is None:
            raise RuntimeError("predictor not fitted")
        _, y, scores = aggregate_by_dimm(
            self._experiment.test,
            self._model.predict_proba(self._experiment.test.X),
        )
        return y, scores
