"""Core facade: the cross-architecture memory-failure predictor."""

from repro.core.predictor import DimmRiskAssessment, MemoryFailurePredictor

__all__ = ["DimmRiskAssessment", "MemoryFailurePredictor"]
