"""Chipkill-class Reed-Solomon code: single-symbol correct, distance 3.

x4 Chipkill/SDDC treats the 8 bits one device contributes over a pair of
beats as one GF(256) symbol.  One burst (8 beats x 72 lanes) therefore splits
into four codewords of 18 symbols each (16 data devices + 2 check devices).
With two check symbols the code has minimum distance 3: it corrects any
single-symbol error — i.e. the complete failure of one x4 device — and
detects (most) double-symbol errors.

The parity-check matrix is ``H = [[1, 1, ..., 1], [a^0, a^1, ..., a^17]]``
over GF(256); syndromes ``S0 = sum e_i`` and ``S1 = sum e_i * a^i`` give the
error value and location directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ecc.gf import GF2m, gf256
from repro.ecc.hsiao import DecodeStatus


@dataclass(frozen=True)
class RsDecodeResult:
    status: DecodeStatus
    symbols: tuple[int, ...]  # all n symbols after (attempted) correction
    corrected_symbol: int | None = None  # symbol index, if corrected


class ReedSolomonChipkill:
    """Shortened RS code with n symbols, n-2 data symbols, over GF(2^8)."""

    def __init__(self, n: int = 18, field: GF2m | None = None):
        self.field = field or gf256()
        if not 3 <= n <= self.field.order - 1:
            raise ValueError(f"n must be in [3, {self.field.order - 1}], got {n}")
        self.n = n
        self.k = n - 2
        # Check symbols occupy the last two positions.  Precompute the
        # inverse of the 2x2 system that determines them.
        f = self.field
        a_p = f.pow_alpha(self.k)  # alpha^(n-2)
        a_q = f.pow_alpha(self.k + 1)  # alpha^(n-1)
        det = f.add(a_q, a_p)
        if det == 0:
            raise ValueError("degenerate check-symbol positions")
        self._a_p = a_p
        self._a_q = a_q
        self._det_inv = f.inv(det)

    def encode(self, data_symbols: list[int] | tuple[int, ...]) -> tuple[int, ...]:
        """Append two check symbols so that both syndromes vanish."""
        f = self.field
        data_symbols = list(data_symbols)
        if len(data_symbols) != self.k:
            raise ValueError(f"expected {self.k} data symbols")
        s0 = 0
        s1 = 0
        for index, symbol in enumerate(data_symbols):
            f._check(symbol)
            s0 = f.add(s0, symbol)
            s1 = f.add(s1, f.mul(symbol, f.pow_alpha(index)))
        # Solve: c0 + c1 = s0 ; c0*a^p + c1*a^q = s1
        c0 = f.mul(f.add(f.mul(s0, self._a_q), s1), self._det_inv)
        c1 = f.add(s0, c0)
        return tuple(data_symbols + [c0, c1])

    def syndromes(self, received: list[int] | tuple[int, ...]) -> tuple[int, int]:
        f = self.field
        if len(received) != self.n:
            raise ValueError(f"expected {self.n} symbols")
        s0 = 0
        s1 = 0
        for index, symbol in enumerate(received):
            f._check(symbol)
            s0 = f.add(s0, symbol)
            s1 = f.add(s1, f.mul(symbol, f.pow_alpha(index)))
        return s0, s1

    def decode(self, received: list[int] | tuple[int, ...]) -> RsDecodeResult:
        """Correct one symbol error; flag everything else as detected."""
        f = self.field
        received = tuple(received)
        s0, s1 = self.syndromes(received)
        if s0 == 0 and s1 == 0:
            return RsDecodeResult(DecodeStatus.CLEAN, received)
        if s0 != 0 and s1 != 0:
            # Single error at position i has S1/S0 = alpha^i.  A zero or
            # out-of-range locator means >= 2 symbol errors: flag, don't
            # miscorrect.
            locator = f.div(s1, s0)
            position = f.log_alpha(locator)
            if position < self.n:
                corrected = list(received)
                corrected[position] = f.add(corrected[position], s0)
                return RsDecodeResult(
                    DecodeStatus.CORRECTED,
                    tuple(corrected),
                    corrected_symbol=position,
                )
        return RsDecodeResult(DecodeStatus.DETECTED_UNCORRECTABLE, received)


def burst_to_symbol_codewords(bus_matrix: np.ndarray) -> list[list[int]]:
    """Split an (8, 72) burst bit matrix into four 18-symbol codewords.

    Device ``d`` contributes lanes ``4d..4d+3``; its symbol in codeword ``p``
    (beat pair ``2p``, ``2p+1``) packs beat ``2p`` nibble into the low 4 bits
    and beat ``2p+1`` nibble into the high 4 bits.
    """
    bus_matrix = np.asarray(bus_matrix, dtype=np.uint8) % 2
    if bus_matrix.shape != (8, 72):
        raise ValueError(f"expected shape (8, 72), got {bus_matrix.shape}")
    codewords = []
    for pair in range(4):
        beat_lo, beat_hi = 2 * pair, 2 * pair + 1
        symbols = []
        for device in range(18):
            lanes = slice(4 * device, 4 * device + 4)
            lo = int(np.packbits(bus_matrix[beat_lo, lanes], bitorder="little")[0])
            hi = int(np.packbits(bus_matrix[beat_hi, lanes], bitorder="little")[0])
            symbols.append(lo | (hi << 4))
        codewords.append(symbols)
    return codewords


def symbol_codewords_to_burst(codewords: list[list[int]]) -> np.ndarray:
    """Inverse of :func:`burst_to_symbol_codewords`."""
    if len(codewords) != 4 or any(len(cw) != 18 for cw in codewords):
        raise ValueError("expected four 18-symbol codewords")
    matrix = np.zeros((8, 72), dtype=np.uint8)
    for pair, symbols in enumerate(codewords):
        beat_lo, beat_hi = 2 * pair, 2 * pair + 1
        for device, symbol in enumerate(symbols):
            for bit in range(4):
                matrix[beat_lo, 4 * device + bit] = (symbol >> bit) & 1
                matrix[beat_hi, 4 * device + bit] = (symbol >> (4 + bit)) & 1
    return matrix
