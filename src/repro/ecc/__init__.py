"""ECC substrate: GF arithmetic, bit-accurate codes, platform ECC models."""

from repro.ecc.gf import GF2m, gf16, gf256
from repro.ecc.hsiao import DecodeResult, DecodeStatus, HsiaoSecDed, random_data_word
from repro.ecc.models import (
    ChipkillEccModel,
    EccModelParams,
    EccOutcome,
    K920EccModel,
    K920Envelope,
    PlatformEccModel,
    PurleyEccModel,
    PurleyEnvelope,
    SecDedEccModel,
    WhitleyEccModel,
    WhitleyEnvelope,
    devices_per_symbol_window,
    max_devices_in_any_window,
    platform_ecc_model,
)
from repro.ecc.reed_solomon import (
    ReedSolomonChipkill,
    RsDecodeResult,
    burst_to_symbol_codewords,
    symbol_codewords_to_burst,
)

__all__ = [
    "ChipkillEccModel",
    "DecodeResult",
    "DecodeStatus",
    "EccModelParams",
    "EccOutcome",
    "GF2m",
    "HsiaoSecDed",
    "K920EccModel",
    "K920Envelope",
    "PlatformEccModel",
    "PurleyEccModel",
    "PurleyEnvelope",
    "ReedSolomonChipkill",
    "RsDecodeResult",
    "SecDedEccModel",
    "WhitleyEccModel",
    "WhitleyEnvelope",
    "burst_to_symbol_codewords",
    "devices_per_symbol_window",
    "gf16",
    "gf256",
    "max_devices_in_any_window",
    "platform_ecc_model",
    "random_data_word",
    "symbol_codewords_to_burst",
]
