"""Galois-field GF(2^m) arithmetic.

Table-based implementation used by the Reed-Solomon Chipkill-class code in
:mod:`repro.ecc.reed_solomon`.  Supports the two fields the ECC substrate
needs: GF(16) (one x4-device nibble per beat) and GF(256) (one device symbol
spanning a beat pair, the correction unit of x4 Chipkill).
"""

from __future__ import annotations

from functools import lru_cache

#: Primitive polynomials (with the x^m term included).
_PRIMITIVE_POLYS = {
    4: 0b1_0011,  # x^4 + x + 1
    8: 0b1_0001_1101,  # x^8 + x^4 + x^3 + x^2 + 1
}


class GF2m:
    """The finite field GF(2^m) with log/antilog tables.

    Elements are integers in ``[0, 2^m)``.  Addition is XOR; multiplication
    uses discrete-log tables built from a primitive element.
    """

    def __init__(self, m: int):
        if m not in _PRIMITIVE_POLYS:
            raise ValueError(f"unsupported field degree {m}; choose from 4 or 8")
        self.m = m
        self.order = 1 << m
        self._poly = _PRIMITIVE_POLYS[m]
        self._exp = [0] * (2 * (self.order - 1))
        self._log = [0] * self.order
        value = 1
        for power in range(self.order - 1):
            self._exp[power] = value
            self._log[value] = power
            value <<= 1
            if value & self.order:
                value ^= self._poly
        # Duplicate the exp table so exponent sums need no modulo.
        for power in range(self.order - 1, 2 * (self.order - 1)):
            self._exp[power] = self._exp[power - (self.order - 1)]

    def _check(self, *elements: int) -> None:
        for element in elements:
            if not 0 <= element < self.order:
                raise ValueError(f"{element} is not an element of GF(2^{self.m})")

    def add(self, a: int, b: int) -> int:
        """Field addition (= subtraction) is bitwise XOR."""
        self._check(a, b)
        return a ^ b

    def mul(self, a: int, b: int) -> int:
        self._check(a, b)
        if a == 0 or b == 0:
            return 0
        return self._exp[self._log[a] + self._log[b]]

    def inv(self, a: int) -> int:
        self._check(a)
        if a == 0:
            raise ZeroDivisionError("0 has no inverse in GF(2^m)")
        return self._exp[(self.order - 1) - self._log[a]]

    def div(self, a: int, b: int) -> int:
        return self.mul(a, self.inv(b))

    def pow_alpha(self, exponent: int) -> int:
        """alpha**exponent for the primitive element alpha."""
        return self._exp[exponent % (self.order - 1)]

    def log_alpha(self, a: int) -> int:
        """Discrete log base alpha; raises for 0."""
        self._check(a)
        if a == 0:
            raise ZeroDivisionError("log of 0 is undefined")
        return self._log[a]

    def poly_eval(self, coefficients: list[int], x: int) -> int:
        """Evaluate a polynomial (highest-degree coefficient first) at x."""
        result = 0
        for coefficient in coefficients:
            result = self.mul(result, x) ^ coefficient
        return result


@lru_cache(maxsize=None)
def gf16() -> GF2m:
    """The shared GF(2^4) instance."""
    return GF2m(4)


@lru_cache(maxsize=None)
def gf256() -> GF2m:
    """The shared GF(2^8) instance."""
    return GF2m(8)
