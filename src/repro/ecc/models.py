"""Behavioural per-platform ECC models.

The exact production ECC algorithms are confidential (paper, Section II-B),
but the paper's findings pin down each platform's *correctable envelope*:

* **Intel Purley** (Skylake/Cascade Lake): weaker than Chipkill because some
  check bits are reallocated to metadata [Li et al., SC'22].  Certain
  single-device patterns — notably 2 erroneous DQs with a 4-beat interval —
  escape correction (Finding 3, Figure 5 top row).
* **Intel Whitley** (Ice Lake): stronger single-device correction; UEs are
  dominated by multi-device patterns, and the residual single-device risk
  concentrates on wide patterns (4 DQs, >= 5 beats) (Figure 5 bottom row).
* **Huawei K920**: an SDDC that handles nearly all single-device patterns
  (Finding 2), so UEs come almost exclusively from multi-device faults.

Each model maps one burst's :class:`~repro.dram.errorbits.BusErrorPattern`
to a *per-activation* UE probability; the fleet simulator draws the outcome.
Probabilities are per-activation hazards, deliberately small: a DIMM whose
fault keeps emitting risky patterns accumulates CEs first and escalates to a
UE later, which is exactly the "predictable UE" temporal structure the
prediction task relies on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.dram.errorbits import BusErrorPattern, DeviceErrorBitmap


class EccOutcome(enum.Enum):
    """Adjudication of one erroneous burst."""

    CE = "corrected_error"
    UE = "uncorrectable_error"


def devices_per_symbol_window(pattern: BusErrorPattern) -> dict[int, tuple[int, ...]]:
    """Devices in error within each beat-pair symbol window.

    Chipkill-class x4 codes treat a device's bits across one beat pair as a
    single GF(256) symbol (see :mod:`repro.ecc.reed_solomon`); two devices
    failing inside the same window defeat single-symbol correction.
    """
    windows: dict[int, set[int]] = {}
    for device, bitmap in pattern.device_bits:
        for beat in bitmap.beats:
            windows.setdefault(beat // 2, set()).add(device)
    return {window: tuple(sorted(devs)) for window, devs in windows.items()}


def max_devices_in_any_window(pattern: BusErrorPattern) -> int:
    windows = devices_per_symbol_window(pattern)
    if not windows:
        return 0
    return max(len(devs) for devs in windows.values())


@dataclass(frozen=True)
class EccModelParams:
    """Per-activation UE hazards shared by all platform models."""

    #: Hazard for patterns the platform corrects comfortably.
    benign_ue_prob: float = 5e-6
    #: Hazard when >= 2 devices err inside one symbol window (defeats SDDC).
    multi_device_same_window_ue_prob: float = 6e-3
    #: Hazard for multi-device bursts that never collide in a window.
    multi_device_cross_window_ue_prob: float = 5e-4


class PlatformEccModel:
    """Base class: adjudicate one erroneous burst as CE or UE."""

    name = "abstract"

    def __init__(self, params: EccModelParams | None = None):
        self.params = params or EccModelParams()

    def ue_probability(self, pattern: BusErrorPattern) -> float:
        """Per-activation probability that this burst is uncorrectable."""
        if pattern.is_empty:
            return 0.0
        if pattern.device_count >= 2:
            if max_devices_in_any_window(pattern) >= 2:
                return self.params.multi_device_same_window_ue_prob
            return self.params.multi_device_cross_window_ue_prob
        _, bitmap = pattern.device_bits[0]
        return self._single_device_ue_prob(bitmap)

    def _single_device_ue_prob(self, bitmap: DeviceErrorBitmap) -> float:
        raise NotImplementedError

    def adjudicate(
        self, pattern: BusErrorPattern, rng: np.random.Generator
    ) -> EccOutcome:
        if rng.random() < self.ue_probability(pattern):
            return EccOutcome.UE
        return EccOutcome.CE


class SecDedEccModel(PlatformEccModel):
    """Plain per-beat SEC-DED: any beat with >= 2 erroneous bits is fatal.

    Provided as the pre-Chipkill reference point; not one of the paper's
    three platforms but useful for ablations and the ECC deep-dive example.
    """

    name = "secded"

    def ue_probability(self, pattern: BusErrorPattern) -> float:
        if pattern.is_empty:
            return 0.0
        bits_per_beat: dict[int, int] = {}
        for _, bitmap in pattern.device_bits:
            for beat, _dq in bitmap.bits:
                bits_per_beat[beat] = bits_per_beat.get(beat, 0) + 1
        if max(bits_per_beat.values()) >= 2:
            return 1.0
        return self.params.benign_ue_prob

    def _single_device_ue_prob(self, bitmap: DeviceErrorBitmap) -> float:
        raise AssertionError("unused: ue_probability is overridden")


@dataclass(frozen=True)
class PurleyEnvelope:
    """Single-device hazard knobs for the Purley model."""

    risky_two_dq_stride4_prob: float = 3.0e-3
    two_dq_prob: float = 6e-4
    wide_dq_prob: float = 4e-4
    single_dq_multi_beat_prob: float = 2e-5


class PurleyEccModel(PlatformEccModel):
    """Intel Purley: weakened SDDC with a single-device blind spot.

    The blind spot reproduces Finding 3: two erroneous DQs whose beats sit a
    stride of 4 apart (beat interval 4) carry an order-of-magnitude higher
    escalation hazard than other single-device patterns.
    """

    name = "intel_purley"

    def __init__(
        self,
        params: EccModelParams | None = None,
        envelope: PurleyEnvelope | None = None,
    ):
        super().__init__(params)
        self.envelope = envelope or PurleyEnvelope()

    def _single_device_ue_prob(self, bitmap: DeviceErrorBitmap) -> float:
        env = self.envelope
        if bitmap.dq_count == 2:
            if bitmap.beat_interval == 4 and bitmap.beat_count == 2:
                return env.risky_two_dq_stride4_prob
            return env.two_dq_prob
        if bitmap.dq_count >= 3:
            return env.wide_dq_prob
        if bitmap.beat_count >= 2:
            return env.single_dq_multi_beat_prob
        return self.params.benign_ue_prob


@dataclass(frozen=True)
class WhitleyEnvelope:
    """Single-device hazard knobs for the Whitley model."""

    whole_chip_prob: float = 2.2e-3  # 4 DQs and >= 5 beats
    four_dq_prob: float = 5e-4
    three_dq_prob: float = 1.5e-4
    narrow_prob: float = 2e-5


class WhitleyEccModel(PlatformEccModel):
    """Intel Whitley: strong single-device correction, multi-device exposed.

    Residual single-device risk concentrates on whole-chip-wide patterns
    (4 DQs across >= 5 beats), matching Figure 5's bottom row.
    """

    name = "intel_whitley"

    def __init__(
        self,
        params: EccModelParams | None = None,
        envelope: WhitleyEnvelope | None = None,
    ):
        super().__init__(params)
        self.envelope = envelope or WhitleyEnvelope()

    def _single_device_ue_prob(self, bitmap: DeviceErrorBitmap) -> float:
        env = self.envelope
        if bitmap.dq_count == 4:
            if bitmap.beat_count >= 5:
                return env.whole_chip_prob
            return env.four_dq_prob
        if bitmap.dq_count == 3:
            return env.three_dq_prob
        return env.narrow_prob


@dataclass(frozen=True)
class K920Envelope:
    """Single-device hazard knobs for the K920 model."""

    wide_prob: float = 6e-5
    narrow_prob: float = 8e-6


class K920EccModel(PlatformEccModel):
    """Huawei K920: K920-SDDC corrects virtually all single-device patterns."""

    name = "k920"

    def __init__(
        self,
        params: EccModelParams | None = None,
        envelope: K920Envelope | None = None,
    ):
        super().__init__(params)
        self.envelope = envelope or K920Envelope()

    def _single_device_ue_prob(self, bitmap: DeviceErrorBitmap) -> float:
        if bitmap.dq_count >= 3 and bitmap.beat_count >= 4:
            return self.envelope.wide_prob
        return self.envelope.narrow_prob


class ChipkillEccModel(PlatformEccModel):
    """Idealised Chipkill: deterministic single-symbol correction.

    Mirrors the bit-accurate :class:`~repro.ecc.reed_solomon.ReedSolomonChipkill`
    behaviour: single-device bursts are always corrected; two devices in the
    same symbol window are always uncorrectable.
    """

    name = "chipkill"

    def ue_probability(self, pattern: BusErrorPattern) -> float:
        if pattern.is_empty:
            return 0.0
        if max_devices_in_any_window(pattern) >= 2:
            return 1.0
        return 0.0

    def _single_device_ue_prob(self, bitmap: DeviceErrorBitmap) -> float:
        raise AssertionError("unused: ue_probability is overridden")


def platform_ecc_model(name: str) -> PlatformEccModel:
    """Factory: ECC model by platform name."""
    models: dict[str, type[PlatformEccModel]] = {
        "intel_purley": PurleyEccModel,
        "intel_whitley": WhitleyEccModel,
        "k920": K920EccModel,
        "chipkill": ChipkillEccModel,
        "secded": SecDedEccModel,
    }
    if name not in models:
        raise KeyError(f"unknown ECC model {name!r}; choose from {sorted(models)}")
    return models[name]()
