"""Bit-accurate (72, 64) Hsiao SEC-DED code.

Hsiao codes [Hsiao 1970] are single-error-correcting, double-error-detecting
codes whose parity-check matrix uses only odd-weight columns, which makes
double errors (even syndrome weight) always distinguishable from single
errors (odd syndrome weight).  This is the classic per-beat protection of
pre-Chipkill ECC DIMMs: one 72-bit beat = 64 data bits + 8 check bits.

The implementation is deterministic: data columns are the 56 weight-3 8-bit
vectors plus the first 8 weight-5 vectors in lexicographic order; check
columns are the unit vectors.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass

import numpy as np

from repro.dram.geometry import DATA_BITS, ECC_BITS


class DecodeStatus(enum.Enum):
    """Outcome of decoding one codeword."""

    CLEAN = "clean"
    CORRECTED = "corrected"
    DETECTED_UNCORRECTABLE = "detected_uncorrectable"


@dataclass(frozen=True)
class DecodeResult:
    status: DecodeStatus
    data: np.ndarray  # 64 data bits after (attempted) correction
    corrected_position: int | None = None  # codeword bit index, if corrected


def _odd_weight_columns() -> list[int]:
    """The 64 data-column bytes: 56 of weight 3, then 8 of weight 5."""
    weight3 = []
    weight5 = []
    for value in range(1, 256):
        weight = bin(value).count("1")
        if weight == 3:
            weight3.append(value)
        elif weight == 5:
            weight5.append(value)
    return weight3 + weight5[: DATA_BITS - len(weight3)]


class HsiaoSecDed:
    """Encoder/decoder for the (72, 64) Hsiao SEC-DED code.

    Codeword layout: bits 0..63 are data, bits 64..71 are checks.
    """

    n = DATA_BITS + ECC_BITS
    k = DATA_BITS

    def __init__(self) -> None:
        data_columns = _odd_weight_columns()
        check_columns = [1 << i for i in range(ECC_BITS)]
        self._columns = data_columns + check_columns
        # H as an (8, 72) bit matrix for vectorised syndrome computation.
        self._h = np.zeros((ECC_BITS, self.n), dtype=np.uint8)
        for position, column in enumerate(self._columns):
            for row in range(ECC_BITS):
                self._h[row, position] = (column >> row) & 1
        self._syndrome_to_position = {
            column: position for position, column in enumerate(self._columns)
        }

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Encode 64 data bits into a 72-bit codeword."""
        data = self._as_bits(data, self.k)
        checks = (self._h[:, : self.k] @ data) % 2
        return np.concatenate([data, checks.astype(np.uint8)])

    def decode(self, received: np.ndarray) -> DecodeResult:
        """Decode a 72-bit word; corrects single-bit, detects double-bit."""
        received = self._as_bits(received, self.n)
        syndrome_bits = (self._h @ received) % 2
        syndrome = 0
        for row in range(ECC_BITS):
            syndrome |= int(syndrome_bits[row]) << row

        if syndrome == 0:
            return DecodeResult(DecodeStatus.CLEAN, received[: self.k].copy())

        if bin(syndrome).count("1") % 2 == 1:
            position = self._syndrome_to_position.get(syndrome)
            if position is not None:
                corrected = received.copy()
                corrected[position] ^= 1
                return DecodeResult(
                    DecodeStatus.CORRECTED,
                    corrected[: self.k],
                    corrected_position=position,
                )
        # Even-weight syndrome (double error) or unused odd syndrome.
        return DecodeResult(
            DecodeStatus.DETECTED_UNCORRECTABLE, received[: self.k].copy()
        )

    @staticmethod
    def _as_bits(bits: np.ndarray, expected: int) -> np.ndarray:
        array = np.asarray(bits, dtype=np.uint8) % 2
        if array.shape != (expected,):
            raise ValueError(f"expected {expected} bits, got shape {array.shape}")
        return array


def random_data_word(rng: np.random.Generator) -> np.ndarray:
    """Convenience: a random 64-bit data word as a bit vector."""
    return rng.integers(0, 2, size=DATA_BITS, dtype=np.uint8)
