"""repro: cross-architecture DRAM failure prediction.

A from-scratch reproduction of "Investigating Memory Failure Prediction
Across CPU Architectures" (DSN 2024): DRAM/ECC/RAS/telemetry substrates, a
calibrated fleet simulator standing in for the paper's production logs,
the fault analyses of Section V, the ML models of Section VI, and the
MLOps framework of Section VII.

Quick start::

    from repro import MemoryFailurePredictor, simulate_fleet
    from repro.simulator import FleetConfig, purley_platform

    sim = simulate_fleet(FleetConfig(platform=purley_platform(scale=0.2)))
    predictor = MemoryFailurePredictor(platform="intel_purley")
    print(predictor.fit_evaluate(sim))
"""

from repro.core import DimmRiskAssessment, MemoryFailurePredictor
from repro.evaluation import ExperimentProtocol, run_table2
from repro.simulator import (
    FleetConfig,
    simulate_fleet,
    simulate_study,
    standard_platforms,
)

__version__ = "1.0.0"

__all__ = [
    "DimmRiskAssessment",
    "ExperimentProtocol",
    "FleetConfig",
    "MemoryFailurePredictor",
    "run_table2",
    "simulate_fleet",
    "simulate_study",
    "standard_platforms",
    "__version__",
]
