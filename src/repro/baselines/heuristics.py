"""Naive baselines used as sanity floors in tests and ablations."""

from __future__ import annotations

import numpy as np


class CeCountThresholdModel:
    """Predict failure when the 5-day CE count exceeds a tuned threshold.

    The classic "too many CEs -> replace" operator heuristic.  The threshold
    is chosen on training data to maximise F1.
    """

    name = "ce_count_threshold"

    def __init__(self, feature_names: list[str], feature: str = "temporal_ce_count_5d"):
        if feature not in feature_names:
            raise ValueError(f"missing feature {feature!r}")
        self._column = feature_names.index(feature)
        self.threshold_: float | None = None

    def fit(self, X, y, eval_set: tuple | None = None) -> "CeCountThresholdModel":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        values = X[:, self._column]
        best_f1, best_threshold = -1.0, float(values.max()) + 1.0
        for candidate in np.unique(np.quantile(values, np.linspace(0.5, 0.99, 25))):
            predicted = values >= candidate
            tp = float(np.sum(predicted & (y == 1)))
            fp = float(np.sum(predicted & (y == 0)))
            fn = float(np.sum(~predicted & (y == 1)))
            precision = tp / (tp + fp) if tp + fp else 0.0
            recall = tp / (tp + fn) if tp + fn else 0.0
            f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
            if f1 > best_f1:
                best_f1, best_threshold = f1, float(candidate)
        self.threshold_ = best_threshold
        return self

    def predict_proba(self, X) -> np.ndarray:
        if self.threshold_ is None:
            raise RuntimeError("model not fitted")
        values = np.asarray(X, dtype=float)[:, self._column]
        # Smooth score: distance to threshold squashed into (0, 1).
        return 1.0 / (1.0 + np.exp(-(values - self.threshold_) / (self.threshold_ + 1.0)))

    def predict(self, X, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(X) >= threshold).astype(int)


class AlwaysNegativeModel:
    """Predicts no failures; the no-prediction operating point (VIRR = 0)."""

    name = "always_negative"

    def fit(self, X, y, eval_set: tuple | None = None) -> "AlwaysNegativeModel":
        return self

    def predict_proba(self, X) -> np.ndarray:
        return np.zeros(np.asarray(X).shape[0])

    def predict(self, X, threshold: float = 0.5) -> np.ndarray:
        return np.zeros(np.asarray(X).shape[0], dtype=int)
