"""Baselines: the SC'22 risky-CE-pattern rules and naive heuristics."""

from repro.baselines.heuristics import AlwaysNegativeModel, CeCountThresholdModel
from repro.baselines.risky_ce import (
    RULE_FEATURES,
    RiskyCeParams,
    RiskyCePatternModel,
)

__all__ = [
    "AlwaysNegativeModel",
    "CeCountThresholdModel",
    "RULE_FEATURES",
    "RiskyCeParams",
    "RiskyCePatternModel",
]
