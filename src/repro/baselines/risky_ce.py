"""Reproduction of the "Risky CE Pattern" baseline [Li et al., SC'22].

The baseline builds *rule-based indicators* from error-bit information:
for every (manufacturer, part number) group it mines, on training data,
which bit-level CE patterns are "risky" — i.e. precede UEs with precision
above a floor — and predicts a DIMM will fail when any risky rule for its
part number fires.  Rules are binary, so the model has a fixed operating
point (no threshold tuning), exactly like the paper's Table II row.

The indicator vocabulary follows the SC'22 error-bit analysis: multi-DQ
patterns, wide beat patterns, adjacent-DQ pairs, the stride-4 beat pattern,
and CE-volume cues.  It was designed for the Intel Skylake/Cascade Lake
(Purley) ECC; following the paper, :meth:`supports` reports Purley only.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RiskyCeParams:
    min_rule_precision: float = 0.18  # keep rules at least this precise
    min_rule_support: int = 3  # rules must fire on >= this many train DIMMs
    fallback_to_global: bool = True  # groups without rules use global rules


def heuristic_risk_score(history) -> float:
    """Model-free risk score straight off a DIMM's raw CE columns.

    The degraded-serving fallback: when feature extraction fails (corrupt
    telemetry, extractor bug) the online service still needs *some* risk
    estimate, so this distils the SC'22 risky-pattern cues — multi-device
    CEs, wide DQ fan-out, dense beat patterns, CE volume — into one score
    in ``[0, 1]`` computed from a
    :class:`~repro.features.windows.DimmHistory` view without touching the
    feature pipeline or any fitted model.
    """
    n = int(history.times.size)
    if n == 0:
        return 0.0
    score = 0.0
    if history.n_devices.max() > 1:
        score += 0.45
    if history.dq_count.max() >= 2:
        score += 0.25
    if history.beat_count.max() >= 4:
        score += 0.15
    score += min(0.15, 0.02 * float(np.log1p(n)))
    return min(score, 1.0)


#: Indicator features the rule miner consumes, by feature-matrix column name.
RULE_FEATURES = (
    "bit_risky_2dq_interval4_count",
    "bit_whole_chip_count",
    "bit_max_dq_count",
    "bit_max_beat_count",
    "bit_multi_device_ce_count",
    "spatial_bank_fault",
    "spatial_row_fault",
    "temporal_storm_count_5d",
)


@dataclass(frozen=True)
class _Rule:
    feature: str
    threshold: float  # fires when value >= threshold
    precision: float
    support: int


class RiskyCePatternModel:
    """Rule-mining baseline with the shared fit / predict interface.

    ``feature_names`` maps feature-matrix columns; ``group_feature`` names
    the column holding the integer part-number code.
    """

    name = "risky_ce_pattern"

    #: Rule firing is binary: the model has no tunable threshold.
    fixed_operating_point = True

    #: Platforms the SC'22 indicator set was designed for.
    SUPPORTED_PLATFORMS = ("intel_purley",)

    def __init__(
        self,
        feature_names: list[str],
        group_feature: str = "static_part_number_code",
        params: RiskyCeParams | None = None,
    ):
        self.params = params or RiskyCeParams()
        self.feature_names = list(feature_names)
        self._index = {name: i for i, name in enumerate(self.feature_names)}
        missing = [f for f in RULE_FEATURES if f not in self._index]
        if missing:
            raise ValueError(f"feature matrix lacks rule features: {missing}")
        if group_feature not in self._index:
            raise ValueError(f"feature matrix lacks group feature {group_feature!r}")
        self._group_column = self._index[group_feature]
        self._rules_by_group: dict[int, list[_Rule]] = {}
        self._global_rules: list[_Rule] = []

    @classmethod
    def supports(cls, platform: str) -> bool:
        return platform in cls.SUPPORTED_PLATFORMS

    # -- rule mining --------------------------------------------------------

    def _candidate_thresholds(self, feature: str, values: np.ndarray) -> list[float]:
        if feature.endswith(("_fault",)):
            return [1.0]
        positives = values[values > 0]
        if positives.size == 0:
            return []
        return sorted({1.0, float(np.median(positives)), float(np.quantile(positives, 0.75))})

    def _mine(self, X: np.ndarray, y: np.ndarray) -> list[_Rule]:
        rules: list[_Rule] = []
        for feature in RULE_FEATURES:
            column = X[:, self._index[feature]]
            for threshold in self._candidate_thresholds(feature, column):
                fires = column >= threshold
                support = int(fires.sum())
                if support < self.params.min_rule_support:
                    continue
                precision = float(y[fires].mean())
                if precision >= self.params.min_rule_precision:
                    rules.append(
                        _Rule(
                            feature=feature,
                            threshold=threshold,
                            precision=precision,
                            support=support,
                        )
                    )
        # Keep the most precise variant of each feature.
        best: dict[str, _Rule] = {}
        for rule in rules:
            if rule.feature not in best or rule.precision > best[rule.feature].precision:
                best[rule.feature] = rule
        return list(best.values())

    def fit(self, X, y, eval_set: tuple | None = None) -> "RiskyCePatternModel":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        self._global_rules = self._mine(X, y)
        groups = X[:, self._group_column].astype(int)
        self._rules_by_group = {}
        for group in np.unique(groups):
            mask = groups == group
            if mask.sum() >= 10 * self.params.min_rule_support:
                mined = self._mine(X[mask], y[mask])
                if mined:
                    self._rules_by_group[int(group)] = mined
        return self

    # -- prediction ----------------------------------------------------------

    def _rules_for(self, group: int) -> list[_Rule]:
        rules = self._rules_by_group.get(group, [])
        if not rules and self.params.fallback_to_global:
            return self._global_rules
        return rules

    def predict(self, X, threshold: float | None = None) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        groups = X[:, self._group_column].astype(int)
        predictions = np.zeros(X.shape[0], dtype=int)
        for i in range(X.shape[0]):
            for rule in self._rules_for(int(groups[i])):
                if X[i, self._index[rule.feature]] >= rule.threshold:
                    predictions[i] = 1
                    break
        return predictions

    def predict_proba(self, X) -> np.ndarray:
        """Binary decisions as scores (rule firing has no soft margin)."""
        return self.predict(X).astype(float)

    def rule_scores(self, X) -> np.ndarray:
        """Soft variant: the max training precision among firing rules."""
        X = np.asarray(X, dtype=float)
        groups = X[:, self._group_column].astype(int)
        scores = np.zeros(X.shape[0], dtype=float)
        for i in range(X.shape[0]):
            firing = [
                rule.precision
                for rule in self._rules_for(int(groups[i]))
                if X[i, self._index[rule.feature]] >= rule.threshold
            ]
            if firing:
                scores[i] = max(firing)
        return scores

    @property
    def rule_count(self) -> int:
        return len(self._global_rules) + sum(
            len(rules) for rules in self._rules_by_group.values()
        )
