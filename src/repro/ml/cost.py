"""Generic cost-aware evaluation (paper Section IV's predecessors).

Before VIRR, prior work [Boixaderas et al. SC'20; Li et al. SC'22; Zhang
et al. DSN'22] scored predictors by datacentre cost: every TP saves the
difference between an unplanned failure and a planned migration, every FP
wastes a migration, every FN pays full price.  This module provides that
accounting; VIRR (:mod:`repro.ml.virr`) is the special case the paper
prefers because it tracks customer-visible interruptions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ml.metrics import ConfusionCounts


@dataclass(frozen=True)
class CostModel:
    """Costs in arbitrary currency units per server event."""

    unplanned_failure_cost: float = 100.0  # crash + cold restart + SLA hit
    planned_migration_cost: float = 10.0  # proactive live migration
    false_alarm_cost: float = 10.0  # wasted migration

    def __post_init__(self) -> None:
        if min(
            self.unplanned_failure_cost,
            self.planned_migration_cost,
            self.false_alarm_cost,
        ) < 0:
            raise ValueError("costs must be non-negative")

    def cost_without_prediction(self, counts: ConfusionCounts) -> float:
        """Every failure is unplanned."""
        return (counts.tp + counts.fn) * self.unplanned_failure_cost

    def cost_with_prediction(self, counts: ConfusionCounts) -> float:
        return (
            counts.tp * self.planned_migration_cost
            + counts.fp * self.false_alarm_cost
            + counts.fn * self.unplanned_failure_cost
        )

    def savings(self, counts: ConfusionCounts) -> float:
        """Absolute cost saved by deploying the predictor."""
        return self.cost_without_prediction(counts) - self.cost_with_prediction(
            counts
        )

    def relative_savings(self, counts: ConfusionCounts) -> float:
        """Savings normalised by the no-prediction cost (the SC'20 metric)."""
        baseline = self.cost_without_prediction(counts)
        if baseline == 0:
            return 0.0
        return self.savings(counts) / baseline

    def breakeven_precision(self) -> float:
        """Precision below which alarms cost more than they save.

        Each alarm saves ``p * (failure - migration)`` in expectation and
        wastes ``(1 - p) * false_alarm`` — the break-even solves equality.
        """
        benefit = self.unplanned_failure_cost - self.planned_migration_cost
        if benefit <= 0:
            return 1.0
        return self.false_alarm_cost / (self.false_alarm_cost + benefit)
