"""Random Forest classifier on the histogram tree engine.

Bagged variance-reduction trees: with ``g = -y`` and ``h = 1`` the
:class:`~repro.ml.tree.GradientTree` leaf value is the bootstrap-sample
label mean and its split gain is variance reduction, which for binary
labels is equivalent to the Gini criterion up to scaling.  Per-tree feature
subsampling defaults to sqrt(n_features), the standard choice.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.ml.tree import Binner, GradientTree, TreeParams


@dataclass(frozen=True)
class RandomForestParams:
    n_estimators: int = 200
    max_depth: int = 12
    max_leaves: int = 255
    min_samples_leaf: int = 5
    max_bins: int = 64
    bootstrap: bool = True
    class_weight_balanced: bool = True
    seed: int = 0

    def tree_params(self) -> TreeParams:
        return TreeParams(
            max_leaves=self.max_leaves,
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
            min_gain=1e-9,
            reg_lambda=1e-6,  # plain mean leaves, no shrinkage
            max_bins=self.max_bins,
        )


class RandomForestClassifier:
    """Binary random-forest classifier with predict_proba."""

    name = "random_forest"

    def __init__(self, params: RandomForestParams | None = None):
        self.params = params or RandomForestParams()
        self._binner: Binner | None = None
        self._trees: list[tuple[GradientTree, np.ndarray]] = []

    def fit(self, X, y, eval_set: tuple | None = None) -> "RandomForestClassifier":
        """Fit the forest; ``eval_set`` is accepted for interface parity."""
        del eval_set
        params = self.params
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
            raise ValueError("inconsistent shapes")
        if set(np.unique(y)) - {0.0, 1.0}:
            raise ValueError("y must be binary")

        rng = np.random.default_rng(params.seed)
        self._binner = Binner(params.max_bins)
        binned = self._binner.fit_transform(X)
        n, n_features = binned.shape
        subset_size = max(1, int(np.sqrt(n_features)))

        # Balanced resampling: bootstrap draws are weighted so the two
        # classes contribute equally, a simple class_weight analogue.
        if params.class_weight_balanced:
            positives = max(1.0, y.sum())
            negatives = max(1.0, n - y.sum())
            weights = np.where(y == 1.0, 0.5 / positives, 0.5 / negatives)
        else:
            weights = np.full(n, 1.0 / n)

        self._trees = []
        tree_params = params.tree_params()
        for _ in range(params.n_estimators):
            if params.bootstrap:
                indices = rng.choice(n, size=n, replace=True, p=weights)
            else:
                indices = np.arange(n)
            features = rng.choice(n_features, size=subset_size, replace=False)
            tree = GradientTree(replace(tree_params))
            tree.fit(binned[indices], g=-y[indices], h=np.ones(len(indices)),
                     feature_subset=features)
            self._trees.append((tree, features))
        return self

    def predict_proba(self, X) -> np.ndarray:
        if self._binner is None or not self._trees:
            raise RuntimeError("model not fitted")
        binned = self._binner.transform(np.asarray(X, dtype=float))
        votes = np.zeros(binned.shape[0], dtype=float)
        for tree, _features in self._trees:
            votes += np.clip(tree.predict(binned), 0.0, 1.0)
        return votes / len(self._trees)

    def predict(self, X, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(X) >= threshold).astype(int)
