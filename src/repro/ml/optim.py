"""Optimisers for the autograd engine."""

from __future__ import annotations

import numpy as np

from repro.ml.autograd import Tensor


class Adam:
    """AdamW-style optimiser (decoupled weight decay)."""

    def __init__(
        self,
        params: list[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        grad_clip: float | None = 1.0,
    ):
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.params = list(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.grad_clip = grad_clip
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def zero_grad(self) -> None:
        for param in self.params:
            param.grad = None

    def _clip(self) -> None:
        if self.grad_clip is None:
            return
        total = 0.0
        for param in self.params:
            if param.grad is not None:
                total += float(np.sum(param.grad**2))
        norm = np.sqrt(total)
        if norm > self.grad_clip:
            scale = self.grad_clip / (norm + 1e-12)
            for param in self.params:
                if param.grad is not None:
                    param.grad *= scale

    def step(self) -> None:
        self._clip()
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for i, param in enumerate(self.params):
            grad = param.grad
            if grad is None:
                continue
            self._m[i] = self.beta1 * self._m[i] + (1.0 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1.0 - self.beta2) * grad**2
            m_hat = self._m[i] / bias1
            v_hat = self._v[i] / bias2
            if self.weight_decay:
                param.data *= 1.0 - self.lr * self.weight_decay
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class SGD:
    """Plain SGD with momentum (used in optimiser comparison tests)."""

    def __init__(self, params: list[Tensor], lr: float = 1e-2, momentum: float = 0.9):
        self.params = list(params)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def zero_grad(self) -> None:
        for param in self.params:
            param.grad = None

    def step(self) -> None:
        for i, param in enumerate(self.params):
            if param.grad is None:
                continue
            self._velocity[i] = self.momentum * self._velocity[i] - self.lr * param.grad
            param.data += self._velocity[i]
