"""LightGBM-style gradient-boosted decision trees.

Binary-logloss boosting with the algorithmic features that define LightGBM
[Ke et al., NeurIPS'17]: histogram split finding, leaf-wise tree growth
(via :class:`~repro.ml.tree.GradientTree`), optional GOSS (Gradient-based
One-Side Sampling), per-tree feature subsampling, shrinkage, class
weighting for imbalance, and early stopping on a validation set.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.metrics import log_loss
from repro.ml.tree import Binner, GradientTree, TreeParams


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x, dtype=float)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


@dataclass(frozen=True)
class GbdtParams:
    n_estimators: int = 300
    learning_rate: float = 0.08
    num_leaves: int = 31
    max_depth: int = 8
    min_samples_leaf: int = 20
    reg_lambda: float = 1.0
    max_bins: int = 64
    colsample: float = 0.9  # fraction of features per tree
    subsample: float = 1.0  # row subsample when GOSS is off
    goss: bool = False
    goss_top_rate: float = 0.2
    goss_other_rate: float = 0.1
    scale_pos_weight: float | None = None  # None = auto-balance
    early_stopping_rounds: int | None = 30
    seed: int = 0

    def tree_params(self) -> TreeParams:
        return TreeParams(
            max_leaves=self.num_leaves,
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
            min_gain=1e-6,
            reg_lambda=self.reg_lambda,
            max_bins=self.max_bins,
        )


class GbdtClassifier:
    """Binary gradient-boosting classifier with a LightGBM-like recipe."""

    name = "lightgbm"

    def __init__(self, params: GbdtParams | None = None):
        self.params = params or GbdtParams()
        self._binner: Binner | None = None
        self._trees: list[GradientTree] = []
        self._bias = 0.0
        self.best_iteration_: int | None = None

    def fit(self, X, y, eval_set: tuple | None = None) -> "GbdtClassifier":
        params = self.params
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
            raise ValueError("inconsistent shapes")
        if set(np.unique(y)) - {0.0, 1.0}:
            raise ValueError("y must be binary")

        rng = np.random.default_rng(params.seed)
        self._binner = Binner(params.max_bins)
        binned = self._binner.fit_transform(X)
        n, n_features = binned.shape

        positives = float(y.sum())
        negatives = float(n - positives)
        if params.scale_pos_weight is not None:
            pos_weight = params.scale_pos_weight
        else:
            pos_weight = max(1.0, negatives / max(positives, 1.0))
        sample_weight = np.where(y == 1.0, pos_weight, 1.0)

        prior = np.clip(positives * pos_weight / (positives * pos_weight + negatives),
                        1e-6, 1 - 1e-6)
        self._bias = float(np.log(prior / (1.0 - prior)))
        raw = np.full(n, self._bias)

        eval_binned = eval_labels = None
        eval_raw = None
        if eval_set is not None:
            eval_x, eval_labels = eval_set
            eval_binned = self._binner.transform(np.asarray(eval_x, dtype=float))
            eval_labels = np.asarray(eval_labels, dtype=float)
            eval_raw = np.full(eval_binned.shape[0], self._bias)

        best_loss = np.inf
        best_round = 0
        self._trees = []
        subset_size = max(1, int(round(params.colsample * n_features)))
        tree_params = params.tree_params()

        for round_index in range(params.n_estimators):
            probability = _sigmoid(raw)
            g = (probability - y) * sample_weight
            h = probability * (1.0 - probability) * sample_weight

            indices, g_fit, h_fit = self._sample_rows(rng, g, h)
            features = rng.choice(n_features, size=subset_size, replace=False)
            tree = GradientTree(tree_params)
            tree.fit(binned[indices], g_fit, h_fit, feature_subset=features)
            self._trees.append(tree)
            raw += params.learning_rate * tree.predict(binned)

            if eval_binned is not None:
                eval_raw += params.learning_rate * tree.predict(eval_binned)
                loss = log_loss(eval_labels.astype(int), _sigmoid(eval_raw))
                if loss < best_loss - 1e-7:
                    best_loss = loss
                    best_round = round_index
                elif (
                    params.early_stopping_rounds is not None
                    and round_index - best_round >= params.early_stopping_rounds
                ):
                    self._trees = self._trees[: best_round + 1]
                    break
        self.best_iteration_ = len(self._trees)
        return self

    def _sample_rows(
        self, rng: np.random.Generator, g: np.ndarray, h: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Row sampling: GOSS or plain subsampling."""
        params = self.params
        n = g.shape[0]
        if params.goss:
            top = max(1, int(params.goss_top_rate * n))
            other = max(1, int(params.goss_other_rate * n))
            order = np.argsort(-np.abs(g), kind="stable")
            top_idx = order[:top]
            rest = order[top:]
            if len(rest) > other:
                rest = rng.choice(rest, size=other, replace=False)
            amplify = (1.0 - params.goss_top_rate) / max(
                params.goss_other_rate, 1e-12
            )
            indices = np.concatenate([top_idx, rest])
            g_fit = g[indices].copy()
            h_fit = h[indices].copy()
            g_fit[top:] *= amplify
            h_fit[top:] *= amplify
            return indices, g_fit, h_fit
        if params.subsample < 1.0:
            size = max(1, int(params.subsample * n))
            indices = rng.choice(n, size=size, replace=False)
            return indices, g[indices], h[indices]
        indices = np.arange(n)
        return indices, g, h

    def predict_raw(self, X) -> np.ndarray:
        if self._binner is None or not self._trees:
            raise RuntimeError("model not fitted")
        binned = self._binner.transform(np.asarray(X, dtype=float))
        raw = np.full(binned.shape[0], self._bias)
        for tree in self._trees:
            raw += self.params.learning_rate * tree.predict(binned)
        return raw

    def predict_proba(self, X) -> np.ndarray:
        return _sigmoid(self.predict_raw(X))

    def predict(self, X, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(X) >= threshold).astype(int)

    def feature_importance(self) -> np.ndarray:
        """Split-count importance per feature (monitoring dashboards use this)."""
        if self._binner is None:
            raise RuntimeError("model not fitted")
        importance = np.zeros(len(self._binner.n_bins), dtype=float)
        for tree in self._trees:
            for feature in tree.feature:
                if feature >= 0:
                    importance[feature] += 1.0
        total = importance.sum()
        return importance / total if total else importance
