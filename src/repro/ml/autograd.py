"""Minimal reverse-mode automatic differentiation on numpy.

Just enough machinery to train the FT-Transformer from scratch: a
:class:`Tensor` wrapping an ndarray, primitive ops with broadcasting-aware
backward passes (add/mul/matmul/pow/exp/log/tanh/slicing/reductions),
stable softmax, and embedding-style gather.  Gradients are accumulated into
``.grad`` by :meth:`Tensor.backward` via topological sort.

Numerically verified against finite differences in the test suite.
"""

from __future__ import annotations

import contextlib

import numpy as np

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Disable graph construction (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (inverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """An ndarray plus (optionally) the graph edge that produced it."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = requires_grad and _GRAD_ENABLED
        self._backward = None
        self._parents: tuple[Tensor, ...] = ()

    # -- graph plumbing ------------------------------------------------------

    @staticmethod
    def _make(data, parents: tuple["Tensor", ...], backward) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor (defaults to d(out)/d(out) = 1)."""
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that requires no grad")
        topo: list[Tensor] = []
        visited: set[int] = set()

        def visit(node: Tensor) -> None:
            stack = [(node, False)]
            while stack:
                current, processed = stack.pop()
                if processed:
                    topo.append(current)
                    continue
                if id(current) in visited:
                    continue
                visited.add(id(current))
                stack.append((current, True))
                for parent in current._parents:
                    if parent.requires_grad:
                        stack.append((parent, False))

        visit(self)
        if grad is None:
            grad = np.ones_like(self.data)
        self._accumulate(np.asarray(grad, dtype=np.float64))
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # -- basics --------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    @staticmethod
    def _coerce(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    # -- arithmetic ------------------------------------------------------------

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad):
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        return self * self._coerce(other).pow(-1.0)

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other) * self.pow(-1.0)

    def pow(self, exponent: float) -> "Tensor":
        data = np.power(self.data, exponent)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(
                    grad * exponent * np.power(self.data, exponent - 1.0)
                )

        return Tensor._make(data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)

        def backward(grad):
            if self.requires_grad:
                grad_a = np.matmul(grad, np.swapaxes(other.data, -1, -2))
                self._accumulate(_unbroadcast(grad_a, self.shape))
            if other.requires_grad:
                grad_b = np.matmul(np.swapaxes(self.data, -1, -2), grad)
                other._accumulate(_unbroadcast(grad_b, other.shape))

        return Tensor._make(np.matmul(self.data, other.data), (self, other), backward)

    # -- shape ops ---------------------------------------------------------------

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._make(self.data.reshape(shape), (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(self.data.transpose(axes), (self,), backward)

    def __getitem__(self, key) -> "Tensor":
        def backward(grad):
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, key, grad)
                self._accumulate(full)

        return Tensor._make(self.data[key], (self,), backward)

    @staticmethod
    def cat(tensors: list["Tensor"], axis: int = 0) -> "Tensor":
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad):
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if tensor.requires_grad:
                    index = [slice(None)] * grad.ndim
                    index[axis] = slice(start, stop)
                    tensor._accumulate(grad[tuple(index)])

        data = np.concatenate([t.data for t in tensors], axis=axis)
        return Tensor._make(data, tuple(tensors), backward)

    def broadcast_to(self, shape: tuple[int, ...]) -> "Tensor":
        original = self.shape

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, original))

        return Tensor._make(np.broadcast_to(self.data, shape).copy(), (self,), backward)

    # -- reductions -----------------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        def backward(grad):
            if not self.requires_grad:
                return
            if axis is None:
                self._accumulate(np.full_like(self.data, grad))
                return
            if not keepdims:
                grad = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(grad, self.shape).copy())

        return Tensor._make(self.data.sum(axis=axis, keepdims=keepdims), (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # -- nonlinearities --------------------------------------------------------

    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * data)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(np.log(self.data), (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * (1.0 - data * data))

        return Tensor._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = np.where(
            self.data >= 0,
            1.0 / (1.0 + np.exp(-np.clip(self.data, None, 500))),
            np.exp(np.clip(self.data, -500, None))
            / (1.0 + np.exp(np.clip(self.data, -500, None))),
        )

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * data * (1.0 - data))

        return Tensor._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(self.data * mask, (self,), backward)

    def gelu(self) -> "Tensor":
        """GELU with the tanh approximation (and its exact derivative)."""
        c = np.sqrt(2.0 / np.pi)
        x = self.data
        inner = c * (x + 0.044715 * x**3)
        tanh_inner = np.tanh(inner)
        data = 0.5 * x * (1.0 + tanh_inner)

        def backward(grad):
            if self.requires_grad:
                sech2 = 1.0 - tanh_inner**2
                d_inner = c * (1.0 + 3.0 * 0.044715 * x**2)
                derivative = 0.5 * (1.0 + tanh_inner) + 0.5 * x * sech2 * d_inner
                self._accumulate(grad * derivative)

        return Tensor._make(data, (self,), backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        data = exp / exp.sum(axis=axis, keepdims=True)

        def backward(grad):
            if self.requires_grad:
                dot = (grad * data).sum(axis=axis, keepdims=True)
                self._accumulate(data * (grad - dot))

        return Tensor._make(data, (self,), backward)

    def take_rows(self, indices: np.ndarray) -> "Tensor":
        """Embedding-style gather along the first axis."""
        indices = np.asarray(indices)

        def backward(grad):
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, indices, grad)
                self._accumulate(full)

        return Tensor._make(self.data[indices], (self,), backward)


def parameter(shape: tuple[int, ...], rng: np.random.Generator, scale: float | None = None) -> Tensor:
    """A trainable tensor with (scaled) normal initialisation."""
    if scale is None:
        fan_in = shape[0] if len(shape) > 1 else max(shape[0], 1)
        scale = 1.0 / np.sqrt(fan_in)
    return Tensor(rng.normal(0.0, scale, size=shape), requires_grad=True)


def zeros_parameter(shape: tuple[int, ...]) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=True)
