"""From-scratch ML substrate: trees, boosting, transformer, metrics, VIRR."""

from repro.ml.autograd import Tensor, no_grad, parameter, zeros_parameter
from repro.ml.calibration import PlattCalibrator, expected_calibration_error
from repro.ml.cost import CostModel
from repro.ml.model_io import load_forest, load_gbdt, save_forest, save_gbdt
from repro.ml.search import SearchResult, SearchSpace, random_search_gbdt
from repro.ml.forest import RandomForestClassifier, RandomForestParams
from repro.ml.ft_transformer import FtTransformerClassifier, FtTransformerParams
from repro.ml.gbdt import GbdtClassifier, GbdtParams
from repro.ml.metrics import (
    ConfusionCounts,
    average_precision,
    confusion,
    f1_score,
    log_loss,
    precision_recall_curve,
    precision_score,
    recall_score,
    roc_auc,
)
from repro.ml.optim import SGD, Adam
from repro.ml.threshold import (
    OperatingPoint,
    apply_threshold,
    select_threshold,
    sweep_operating_points,
)
from repro.ml.tree import Binner, GradientTree, TreeParams
from repro.ml.virr import (
    DEFAULT_COLD_FRACTION,
    VirrBreakdown,
    breakeven_precision,
    virr,
    virr_from_counts,
)

__all__ = [
    "Adam",
    "CostModel",
    "PlattCalibrator",
    "SearchResult",
    "SearchSpace",
    "expected_calibration_error",
    "load_forest",
    "load_gbdt",
    "random_search_gbdt",
    "save_forest",
    "save_gbdt",
    "Binner",
    "ConfusionCounts",
    "DEFAULT_COLD_FRACTION",
    "FtTransformerClassifier",
    "FtTransformerParams",
    "GbdtClassifier",
    "GbdtParams",
    "GradientTree",
    "OperatingPoint",
    "RandomForestClassifier",
    "RandomForestParams",
    "SGD",
    "Tensor",
    "TreeParams",
    "VirrBreakdown",
    "apply_threshold",
    "average_precision",
    "breakeven_precision",
    "confusion",
    "f1_score",
    "log_loss",
    "no_grad",
    "parameter",
    "precision_recall_curve",
    "precision_score",
    "recall_score",
    "roc_auc",
    "select_threshold",
    "sweep_operating_points",
    "virr",
    "virr_from_counts",
    "zeros_parameter",
]
