"""FT-Transformer for tabular data [Gorishniy et al., NeurIPS'21].

The Feature-Tokenizer Transformer embeds each tabular feature as one token
(numeric feature j: ``x_j * W_j + b_j``; categorical feature j: an
embedding row per category), prepends a [CLS] token, runs pre-norm
transformer blocks, and reads the prediction off the [CLS] token.

Trained with AdamW on weighted binary cross-entropy, early-stopped on
validation PR-AUC — matching how the paper's deep baseline is used.
Implemented entirely on :mod:`repro.ml.autograd`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.autograd import Tensor, no_grad, parameter, zeros_parameter
from repro.ml.metrics import average_precision
from repro.ml.nn import (
    LayerNorm,
    Linear,
    Module,
    TransformerBlock,
    binary_cross_entropy_with_logits,
)
from repro.ml.optim import Adam


@dataclass(frozen=True)
class FtTransformerParams:
    dim: int = 32
    n_heads: int = 4
    n_blocks: int = 2
    ffn_hidden: int = 64
    dropout: float = 0.1
    lr: float = 1e-3
    weight_decay: float = 1e-4
    batch_size: int = 256
    max_epochs: int = 60
    patience: int = 10  # epochs without val improvement before stopping
    balance_classes: bool = True
    seed: int = 0


class _FeatureTokenizer(Module):
    """One token per feature: numeric scaling + categorical embeddings."""

    def __init__(
        self,
        n_numeric: int,
        categorical_cardinalities: tuple[int, ...],
        dim: int,
        rng: np.random.Generator,
    ):
        self.n_numeric = n_numeric
        self.cardinalities = categorical_cardinalities
        self.dim = dim
        if n_numeric:
            self.numeric_weight = parameter((n_numeric, dim), rng, scale=0.1)
            self.numeric_bias = zeros_parameter((n_numeric, dim))
        self.embeddings = [
            parameter((cardinality, dim), rng, scale=0.1)
            for cardinality in categorical_cardinalities
        ]
        self.cls = parameter((1, 1, dim), rng, scale=0.1)

    def __call__(self, x_numeric: np.ndarray, x_categorical: np.ndarray) -> Tensor:
        batch = x_numeric.shape[0] if self.n_numeric else x_categorical.shape[0]
        tokens: list[Tensor] = []
        if self.n_numeric:
            # (B, F, 1) * (F, D) + (F, D) -> (B, F, D)
            x = Tensor(x_numeric[:, :, None])
            tokens.append(x * self.numeric_weight + self.numeric_bias)
        for j, embedding in enumerate(self.embeddings):
            gathered = embedding.take_rows(x_categorical[:, j])  # (B, D)
            tokens.append(gathered.reshape(batch, 1, self.dim))
        cls = self.cls.broadcast_to((batch, 1, self.dim))
        return Tensor.cat([cls] + tokens, axis=1)


class FtTransformerClassifier:
    """Binary FT-Transformer with the shared fit/predict_proba interface."""

    name = "ft_transformer"

    def __init__(
        self,
        params: FtTransformerParams | None = None,
        categorical_cardinalities: tuple[int, ...] = (),
    ):
        self.params = params or FtTransformerParams()
        self.cardinalities = tuple(categorical_cardinalities)
        self._rng = np.random.default_rng(self.params.seed)
        self._tokenizer: _FeatureTokenizer | None = None
        self._blocks: list[TransformerBlock] = []
        self._final_norm: LayerNorm | None = None
        self._head: Linear | None = None
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None
        self.best_epoch_: int | None = None

    # -- internals -----------------------------------------------------------

    def _build(self, n_numeric: int) -> None:
        p = self.params
        self._tokenizer = _FeatureTokenizer(
            n_numeric, self.cardinalities, p.dim, self._rng
        )
        self._blocks = [
            TransformerBlock(p.dim, p.n_heads, p.ffn_hidden, self._rng, p.dropout)
            for _ in range(p.n_blocks)
        ]
        self._final_norm = LayerNorm(p.dim)
        self._head = Linear(p.dim, 1, self._rng)

    def _modules(self) -> list[Module]:
        return [self._tokenizer, *self._blocks, self._final_norm, self._head]

    def _all_parameters(self) -> list[Tensor]:
        params: list[Tensor] = []
        for module in self._modules():
            params.extend(module.parameters())
        return params

    def _set_training(self, training: bool) -> None:
        for block in self._blocks:
            block.set_training(training)

    def _split(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Split a combined matrix into numeric part and categorical part.

        Categorical columns, if any, are the *last* ``len(cardinalities)``
        columns and must contain integer codes.
        """
        n_categorical = len(self.cardinalities)
        if n_categorical == 0:
            return X.astype(float), np.zeros((X.shape[0], 0), dtype=int)
        numeric = X[:, : X.shape[1] - n_categorical].astype(float)
        categorical = X[:, X.shape[1] - n_categorical :].astype(int)
        return numeric, categorical

    def _forward(self, x_numeric: np.ndarray, x_categorical: np.ndarray) -> Tensor:
        tokens = self._tokenizer(x_numeric, x_categorical)
        for block in self._blocks:
            tokens = block(tokens)
        cls = self._final_norm(tokens[:, 0, :])
        return self._head(cls).reshape(x_numeric.shape[0])

    # -- API -----------------------------------------------------------------

    def fit(self, X, y, eval_set: tuple | None = None) -> "FtTransformerClassifier":
        p = self.params
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        numeric, categorical = self._split(X)

        self._mean = numeric.mean(axis=0)
        self._std = numeric.std(axis=0) + 1e-8
        numeric = (numeric - self._mean) / self._std
        self._build(numeric.shape[1])

        if p.balance_classes:
            positives = max(1.0, y.sum())
            negatives = max(1.0, len(y) - y.sum())
            weights = np.where(y == 1.0, 0.5 * len(y) / positives,
                               0.5 * len(y) / negatives)
        else:
            weights = np.ones(len(y))

        eval_numeric = eval_labels = eval_categorical = None
        if eval_set is not None:
            eval_x, eval_labels = eval_set
            eval_numeric, eval_categorical = self._split(
                np.asarray(eval_x, dtype=float)
            )
            eval_numeric = (eval_numeric - self._mean) / self._std
            eval_labels = np.asarray(eval_labels, dtype=int)

        optimizer = Adam(
            self._all_parameters(),
            lr=p.lr,
            weight_decay=p.weight_decay,
        )
        n = numeric.shape[0]
        best_metric = -np.inf
        best_state: list[np.ndarray] | None = None
        stale_epochs = 0

        for epoch in range(p.max_epochs):
            self._set_training(True)
            order = self._rng.permutation(n)
            for start in range(0, n, p.batch_size):
                batch = order[start : start + p.batch_size]
                logits = self._forward(numeric[batch], categorical[batch])
                loss = binary_cross_entropy_with_logits(
                    logits, y[batch], weights[batch]
                )
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()

            if eval_numeric is None:
                continue
            scores = self._predict_scores(eval_numeric, eval_categorical)
            metric = average_precision(eval_labels, scores)
            if metric > best_metric + 1e-6:
                best_metric = metric
                best_state = [param.data.copy() for param in self._all_parameters()]
                self.best_epoch_ = epoch
                stale_epochs = 0
            else:
                stale_epochs += 1
                if stale_epochs >= p.patience:
                    break

        if best_state is not None:
            for param, state in zip(self._all_parameters(), best_state):
                param.data = state
        return self

    def _predict_scores(
        self, numeric: np.ndarray, categorical: np.ndarray
    ) -> np.ndarray:
        self._set_training(False)
        scores = np.empty(numeric.shape[0])
        with no_grad():
            for start in range(0, numeric.shape[0], self.params.batch_size):
                stop = start + self.params.batch_size
                logits = self._forward(numeric[start:stop], categorical[start:stop])
                scores[start:stop] = logits.data
        return 1.0 / (1.0 + np.exp(-np.clip(scores, -500, 500)))

    def predict_proba(self, X) -> np.ndarray:
        if self._tokenizer is None:
            raise RuntimeError("model not fitted")
        numeric, categorical = self._split(np.asarray(X, dtype=float))
        numeric = (numeric - self._mean) / self._std
        return self._predict_scores(numeric, categorical)

    def predict(self, X, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(X) >= threshold).astype(int)
