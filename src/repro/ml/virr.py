"""VM Interruption Reduction Rate (paper Section IV, Figure 2).

Without prediction, every failing server interrupts its VMs:
``V = Va * (TP + FN)``.  With prediction, predicted-positive servers are
migrated proactively; a fraction ``y_c`` of them still needs a cold
migration (which interrupts VMs), and missed failures interrupt as before:
``V' = Va * y_c * (TP + FP) + Va * FN``.

``VIRR = (V - V') / V``, which simplifies to
``(1 - y_c / precision) * recall`` — negative whenever the model's
precision drops below the cold-migration fraction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ml.metrics import ConfusionCounts

#: The paper's conservative cold-migration fraction.
DEFAULT_COLD_FRACTION = 0.1


def virr(precision: float, recall: float, y_c: float = DEFAULT_COLD_FRACTION) -> float:
    """VIRR from an operating point's precision and recall.

    Returns 0.0 when the model predicts nothing (recall == 0), matching the
    no-prediction baseline; otherwise applies the closed form, which may be
    negative for low-precision models.
    """
    if not 0.0 <= y_c <= 1.0:
        raise ValueError(f"y_c must be in [0, 1], got {y_c}")
    if recall == 0.0:
        return 0.0
    if precision <= 0.0:
        raise ValueError("recall > 0 requires precision > 0")
    return (1.0 - y_c / precision) * recall


@dataclass(frozen=True)
class VirrBreakdown:
    """Exact interruption accounting behind one VIRR value."""

    interruptions_without_prediction: float  # V
    cold_migration_interruptions: float  # V'_1
    missed_failure_interruptions: float  # V'_2
    y_c: float
    vms_per_server: float

    @property
    def interruptions_with_prediction(self) -> float:
        return self.cold_migration_interruptions + self.missed_failure_interruptions

    @property
    def virr(self) -> float:
        if self.interruptions_without_prediction == 0:
            return 0.0
        return (
            self.interruptions_without_prediction
            - self.interruptions_with_prediction
        ) / self.interruptions_without_prediction


def virr_from_counts(
    counts: ConfusionCounts,
    y_c: float = DEFAULT_COLD_FRACTION,
    vms_per_server: float = 10.0,
) -> VirrBreakdown:
    """Exact VIRR accounting from confusion counts (paper's V / V' terms)."""
    if not 0.0 <= y_c <= 1.0:
        raise ValueError(f"y_c must be in [0, 1], got {y_c}")
    v = vms_per_server * (counts.tp + counts.fn)
    v1 = vms_per_server * y_c * (counts.tp + counts.fp)
    v2 = vms_per_server * counts.fn
    return VirrBreakdown(
        interruptions_without_prediction=v,
        cold_migration_interruptions=v1,
        missed_failure_interruptions=v2,
        y_c=y_c,
        vms_per_server=vms_per_server,
    )


def breakeven_precision(y_c: float = DEFAULT_COLD_FRACTION) -> float:
    """Precision below which prediction *increases* interruptions."""
    return y_c
