"""Operating-point (decision-threshold) selection.

Models output scores; the paper reports precision / recall / F1 / VIRR at a
chosen operating point.  We tune the threshold on a validation split —
never on test — maximising either F1 or VIRR.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.metrics import precision_recall_curve
from repro.ml.virr import DEFAULT_COLD_FRACTION, virr


@dataclass(frozen=True)
class OperatingPoint:
    threshold: float
    precision: float
    recall: float
    f1: float
    virr: float


def sweep_operating_points(
    y_true,
    y_score,
    y_c: float = DEFAULT_COLD_FRACTION,
) -> list[OperatingPoint]:
    """All distinct operating points of a scored validation set."""
    precision, recall, thresholds = precision_recall_curve(y_true, y_score)
    points = []
    for p, r, threshold in zip(precision, recall, thresholds):
        f1 = 2.0 * p * r / (p + r) if (p + r) > 0 else 0.0
        point_virr = virr(p, r, y_c) if (r == 0.0 or p > 0.0) else 0.0
        points.append(
            OperatingPoint(
                threshold=float(threshold),
                precision=float(p),
                recall=float(r),
                f1=float(f1),
                virr=float(point_virr),
            )
        )
    return points


def select_threshold(
    y_true,
    y_score,
    objective: str = "f1",
    y_c: float = DEFAULT_COLD_FRACTION,
    min_precision: float = 0.0,
) -> OperatingPoint:
    """Best validation operating point under ``objective`` (f1 or virr).

    ``min_precision`` optionally constrains the search (useful for VIRR,
    which rewards recall only while precision stays above y_c).
    """
    if objective not in ("f1", "virr"):
        raise ValueError(f"objective must be 'f1' or 'virr', got {objective!r}")
    points = sweep_operating_points(y_true, y_score, y_c)
    eligible = [p for p in points if p.precision >= min_precision]
    if not eligible:
        eligible = points
    key = (lambda p: p.f1) if objective == "f1" else (lambda p: p.virr)
    best_value = max(key(p) for p in eligible)
    if best_value <= 0.0 and objective == "virr":
        # Fall back to F1 if no threshold achieves positive VIRR.
        key = lambda p: p.f1  # noqa: E731
        best_value = max(key(p) for p in eligible)
    # Regularised pick: among near-optimal points (within 10% of the best),
    # prefer the most balanced precision/recall, and among equally balanced
    # ones the lowest threshold.  Extreme thresholds tend to overfit small
    # validation sets and transfer poorly across time; a lower cut keeps the
    # alarm sensitive to slightly weaker scores at serving time.
    near_optimal = [p for p in eligible if key(p) >= 0.9 * best_value]
    return min(
        near_optimal,
        key=lambda p: (round(abs(p.precision - p.recall), 6), p.threshold),
    )


def apply_threshold(y_score, threshold: float) -> np.ndarray:
    """Binary predictions at a threshold (score >= threshold)."""
    return (np.asarray(y_score) >= threshold).astype(int)
