"""Neural-network layers on the autograd engine.

Implements exactly what the FT-Transformer needs: Linear, LayerNorm,
Dropout, multi-head self-attention and a pre-norm transformer block.
"""

from __future__ import annotations

import numpy as np

from repro.ml.autograd import Tensor, parameter, zeros_parameter


class Module:
    """Base class with recursive parameter collection."""

    def parameters(self) -> list[Tensor]:
        params: list[Tensor] = []
        for value in self.__dict__.values():
            if isinstance(value, Tensor) and value.requires_grad:
                params.append(value)
            elif isinstance(value, Module):
                params.extend(value.parameters())
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        params.extend(item.parameters())
                    elif isinstance(item, Tensor) and item.requires_grad:
                        params.append(item)
        return params

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None


class Linear(Module):
    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator):
        self.weight = parameter((in_features, out_features), rng)
        self.bias = zeros_parameter((out_features,))

    def __call__(self, x: Tensor) -> Tensor:
        return x @ self.weight + self.bias


class LayerNorm(Module):
    def __init__(self, dim: int, eps: float = 1e-5):
        self.gamma = Tensor(np.ones(dim), requires_grad=True)
        self.beta = zeros_parameter((dim,))
        self.eps = eps

    def __call__(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normalised = centered * (variance + self.eps).pow(-0.5)
        return normalised * self.gamma + self.beta


class Dropout(Module):
    def __init__(self, rate: float, rng: np.random.Generator):
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self.rng = rng
        self.training = True

    def __call__(self, x: Tensor) -> Tensor:
        if not self.training or self.rate == 0.0:
            return x
        keep = 1.0 - self.rate
        mask = (self.rng.random(x.shape) < keep) / keep
        return x * Tensor(mask)


class MultiHeadSelfAttention(Module):
    """Standard scaled-dot-product attention over feature tokens."""

    def __init__(self, dim: int, n_heads: int, rng: np.random.Generator,
                 dropout: float = 0.0):
        if dim % n_heads != 0:
            raise ValueError(f"dim {dim} not divisible by n_heads {n_heads}")
        self.n_heads = n_heads
        self.head_dim = dim // n_heads
        self.query = Linear(dim, dim, rng)
        self.key = Linear(dim, dim, rng)
        self.value = Linear(dim, dim, rng)
        self.out = Linear(dim, dim, rng)
        self.dropout = Dropout(dropout, rng)

    def _split_heads(self, x: Tensor, batch: int, tokens: int) -> Tensor:
        return x.reshape(batch, tokens, self.n_heads, self.head_dim).transpose(
            0, 2, 1, 3
        )

    def __call__(self, x: Tensor) -> Tensor:
        batch, tokens, dim = x.shape
        q = self._split_heads(self.query(x), batch, tokens)
        k = self._split_heads(self.key(x), batch, tokens)
        v = self._split_heads(self.value(x), batch, tokens)

        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(self.head_dim))
        weights = self.dropout(scores.softmax(axis=-1))
        context = weights @ v  # (B, H, T, hd)
        merged = context.transpose(0, 2, 1, 3).reshape(batch, tokens, dim)
        return self.out(merged)


class FeedForward(Module):
    """Position-wise MLP with GELU."""

    def __init__(self, dim: int, hidden: int, rng: np.random.Generator,
                 dropout: float = 0.0):
        self.fc1 = Linear(dim, hidden, rng)
        self.fc2 = Linear(hidden, dim, rng)
        self.dropout = Dropout(dropout, rng)

    def __call__(self, x: Tensor) -> Tensor:
        return self.fc2(self.dropout(self.fc1(x).gelu()))


class TransformerBlock(Module):
    """Pre-norm block: x + Attn(LN(x)); x + FFN(LN(x))."""

    def __init__(self, dim: int, n_heads: int, ffn_hidden: int,
                 rng: np.random.Generator, dropout: float = 0.0):
        self.norm1 = LayerNorm(dim)
        self.attention = MultiHeadSelfAttention(dim, n_heads, rng, dropout)
        self.norm2 = LayerNorm(dim)
        self.ffn = FeedForward(dim, ffn_hidden, rng, dropout)
        self.dropout = Dropout(dropout, rng)

    def __call__(self, x: Tensor) -> Tensor:
        x = x + self.dropout(self.attention(self.norm1(x)))
        x = x + self.dropout(self.ffn(self.norm2(x)))
        return x

    def set_training(self, training: bool) -> None:
        for module in (self.attention.dropout, self.ffn.dropout, self.dropout):
            module.training = training


def binary_cross_entropy_with_logits(
    logits: Tensor, targets: np.ndarray, weights: np.ndarray | None = None
) -> Tensor:
    """Numerically stable weighted BCE on raw logits.

    Uses log(1 + exp(-|x|)) + max(x, 0) - x*y formulation via tensor ops.
    """
    y = Tensor(np.asarray(targets, dtype=float))
    # softplus(x) = log(1 + exp(x)) computed stably: max(x,0) + log1p(exp(-|x|))
    abs_logits = logits.relu() + (-logits).relu()  # |x|
    softplus = logits.relu() + ((-abs_logits).exp() + 1.0).log()
    loss = softplus - logits * y
    if weights is not None:
        loss = loss * Tensor(np.asarray(weights, dtype=float))
        return loss.sum() * (1.0 / float(np.sum(weights)))
    return loss.mean()
