"""Binary-classification metrics (paper Section IV).

Implemented from scratch on numpy: confusion counts, precision / recall /
F1, precision-recall curves, average precision and ROC-AUC.  All functions
accept plain array-likes and validate shapes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ConfusionCounts:
    """TP / FP / FN / TN with the paper's derived measures."""

    tp: int
    fp: int
    fn: int
    tn: int

    @property
    def total(self) -> int:
        return self.tp + self.fp + self.fn + self.tn

    @property
    def precision(self) -> float:
        denominator = self.tp + self.fp
        return self.tp / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        denominator = self.tp + self.fn
        return self.tp / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2.0 * p * r / (p + r) if (p + r) > 0 else 0.0


def _validate(y_true, y_score_or_pred) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    other = np.asarray(y_score_or_pred)
    if y_true.shape != other.shape or y_true.ndim != 1:
        raise ValueError(
            f"shape mismatch: y_true {y_true.shape} vs {other.shape}"
        )
    if y_true.size == 0:
        raise ValueError("empty inputs")
    unique = set(np.unique(y_true).tolist())
    if not unique <= {0, 1, False, True}:
        raise ValueError(f"y_true must be binary, got values {sorted(unique)}")
    return y_true.astype(bool), other


def confusion(y_true, y_pred) -> ConfusionCounts:
    """Confusion counts from binary predictions."""
    y_true, y_pred = _validate(y_true, y_pred)
    y_pred = y_pred.astype(bool)
    return ConfusionCounts(
        tp=int(np.sum(y_true & y_pred)),
        fp=int(np.sum(~y_true & y_pred)),
        fn=int(np.sum(y_true & ~y_pred)),
        tn=int(np.sum(~y_true & ~y_pred)),
    )


def precision_score(y_true, y_pred) -> float:
    return confusion(y_true, y_pred).precision


def recall_score(y_true, y_pred) -> float:
    return confusion(y_true, y_pred).recall


def f1_score(y_true, y_pred) -> float:
    return confusion(y_true, y_pred).f1


def precision_recall_curve(
    y_true, y_score
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Precision and recall at every distinct score threshold.

    Returns ``(precision, recall, thresholds)`` where predictions are
    ``score >= threshold``; thresholds descend, so recall ascends.
    """
    y_true, y_score = _validate(y_true, y_score)
    order = np.argsort(-y_score, kind="stable")
    sorted_true = y_true[order]
    sorted_score = y_score[order]

    # Evaluate only at the last occurrence of each distinct score.
    distinct = np.flatnonzero(np.diff(sorted_score)) if y_score.size > 1 else np.array([], dtype=int)
    boundaries = np.concatenate([distinct, [y_score.size - 1]])

    tp_cum = np.cumsum(sorted_true)
    positives = int(tp_cum[-1])
    tps = tp_cum[boundaries]
    fps = boundaries + 1 - tps
    with np.errstate(divide="ignore", invalid="ignore"):
        precision = np.where(tps + fps > 0, tps / (tps + fps), 0.0)
    recall = tps / positives if positives else np.zeros_like(tps, dtype=float)
    thresholds = sorted_score[boundaries]
    return precision.astype(float), recall.astype(float), thresholds


def average_precision(y_true, y_score) -> float:
    """Area under the PR curve via the step-wise interpolation."""
    precision, recall, _ = precision_recall_curve(y_true, y_score)
    recall_steps = np.diff(np.concatenate([[0.0], recall]))
    return float(np.sum(recall_steps * precision))


def roc_auc(y_true, y_score) -> float:
    """Rank-based AUC (equivalent to the Mann-Whitney U statistic)."""
    y_true, y_score = _validate(y_true, y_score)
    positives = int(np.sum(y_true))
    negatives = y_true.size - positives
    if positives == 0 or negatives == 0:
        return 0.5
    order = np.argsort(y_score, kind="stable")
    ranks = np.empty(y_score.size, dtype=float)
    sorted_scores = y_score[order]
    # Average ranks over ties.
    i = 0
    while i < y_score.size:
        j = i
        while j + 1 < y_score.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    positive_rank_sum = float(np.sum(ranks[y_true]))
    u_statistic = positive_rank_sum - positives * (positives + 1) / 2.0
    return u_statistic / (positives * negatives)


def log_loss(y_true, y_prob, eps: float = 1e-12) -> float:
    """Mean negative log-likelihood of binary labels."""
    y_true, y_prob = _validate(y_true, y_prob)
    p = np.clip(y_prob.astype(float), eps, 1.0 - eps)
    return float(-np.mean(np.where(y_true, np.log(p), np.log(1.0 - p))))
