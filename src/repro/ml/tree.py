"""Histogram-based gradient decision tree.

The shared tree engine behind :mod:`repro.ml.forest` and
:mod:`repro.ml.gbdt`.  Features are pre-binned into at most ``max_bins``
quantile bins (:class:`Binner`); split finding scans per-feature histograms
of gradient/hessian sums, exactly as LightGBM does.  Growth is *leaf-wise*
(best-gain-first, LightGBM's signature strategy) bounded by ``max_leaves``
and ``max_depth``.

With the second-order objective the optimal leaf weight is ``-G / (H + λ)``
and the split gain is the standard XGBoost/LightGBM formula.  Plain
regression trees (for Random Forest) are the special case ``g = -y, h = 1``,
whose leaf value reduces to the label mean and whose gain reduces to
variance reduction.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class TreeParams:
    """Growth bounds and regularisation."""

    max_leaves: int = 31
    max_depth: int = 8
    min_samples_leaf: int = 20
    min_gain: float = 1e-6
    reg_lambda: float = 1.0
    max_bins: int = 64

    def __post_init__(self) -> None:
        if self.max_leaves < 2:
            raise ValueError("max_leaves must be >= 2")
        if self.max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if self.min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        if not 2 <= self.max_bins <= 255:
            raise ValueError("max_bins must be in [2, 255]")


class Binner:
    """Quantile pre-binning of a feature matrix into uint8 bin indices."""

    def __init__(self, max_bins: int = 64):
        if not 2 <= max_bins <= 255:
            raise ValueError("max_bins must be in [2, 255]")
        self.max_bins = max_bins
        self.edges_: list[np.ndarray] | None = None

    def fit(self, X: np.ndarray) -> "Binner":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        quantiles = np.linspace(0.0, 1.0, self.max_bins + 1)[1:-1]
        self.edges_ = [
            np.unique(np.quantile(X[:, j], quantiles)) for j in range(X.shape[1])
        ]
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.edges_ is None:
            raise RuntimeError("Binner not fitted")
        X = np.asarray(X, dtype=float)
        binned = np.empty(X.shape, dtype=np.uint8)
        for j, edges in enumerate(self.edges_):
            binned[:, j] = np.searchsorted(edges, X[:, j], side="right")
        return binned

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    @property
    def n_bins(self) -> list[int]:
        if self.edges_ is None:
            raise RuntimeError("Binner not fitted")
        return [len(edges) + 1 for edges in self.edges_]


@dataclass
class _LeafCandidate:
    """A leaf plus its best potential split, ordered by gain for the heap."""

    gain: float
    node_id: int
    feature: int
    bin_threshold: int
    indices: np.ndarray
    depth: int
    order: int = field(default=0)

    def __lt__(self, other: "_LeafCandidate") -> bool:
        return (-self.gain, self.order) < (-other.gain, other.order)


class GradientTree:
    """One leaf-wise-grown tree over pre-binned features."""

    def __init__(self, params: TreeParams | None = None):
        self.params = params or TreeParams()
        # Flat node arrays; feature == -1 marks a leaf.
        self.feature: np.ndarray | None = None
        self.threshold: np.ndarray | None = None
        self.left: np.ndarray | None = None
        self.right: np.ndarray | None = None
        self.value: np.ndarray | None = None
        self.n_leaves = 0

    # -- fitting -----------------------------------------------------------

    def fit(
        self,
        binned: np.ndarray,
        g: np.ndarray,
        h: np.ndarray,
        feature_subset: np.ndarray | None = None,
    ) -> "GradientTree":
        """Grow the tree on gradients ``g`` and hessians ``h``."""
        params = self.params
        binned = np.asarray(binned, dtype=np.uint8)
        g = np.asarray(g, dtype=np.float64)
        h = np.asarray(h, dtype=np.float64)
        if binned.ndim != 2 or g.shape != h.shape or g.shape[0] != binned.shape[0]:
            raise ValueError("inconsistent shapes")
        n_features = binned.shape[1]
        features = (
            np.arange(n_features) if feature_subset is None else feature_subset
        )

        nodes_feature: list[int] = [-1]
        nodes_threshold: list[int] = [0]
        nodes_left: list[int] = [-1]
        nodes_right: list[int] = [-1]
        nodes_value: list[float] = [0.0]

        counter = itertools.count()
        heap: list[_LeafCandidate] = []
        root_indices = np.arange(binned.shape[0])
        nodes_value[0] = self._leaf_value(g, h, root_indices)
        self._push_candidate(
            heap, binned, g, h, features, 0, root_indices, 0, counter
        )

        leaves = 1
        while heap and leaves < params.max_leaves:
            candidate = heapq.heappop(heap)
            if candidate.gain < params.min_gain:
                break
            indices = candidate.indices
            go_left = binned[indices, candidate.feature] <= candidate.bin_threshold
            left_indices = indices[go_left]
            right_indices = indices[~go_left]
            if (
                len(left_indices) < params.min_samples_leaf
                or len(right_indices) < params.min_samples_leaf
            ):
                continue

            left_id = len(nodes_feature)
            right_id = left_id + 1
            for child_indices in (left_indices, right_indices):
                nodes_feature.append(-1)
                nodes_threshold.append(0)
                nodes_left.append(-1)
                nodes_right.append(-1)
                nodes_value.append(self._leaf_value(g, h, child_indices))
            nodes_feature[candidate.node_id] = candidate.feature
            nodes_threshold[candidate.node_id] = candidate.bin_threshold
            nodes_left[candidate.node_id] = left_id
            nodes_right[candidate.node_id] = right_id
            leaves += 1

            depth = candidate.depth + 1
            if depth < params.max_depth:
                self._push_candidate(
                    heap, binned, g, h, features, left_id, left_indices, depth, counter
                )
                self._push_candidate(
                    heap, binned, g, h, features, right_id, right_indices, depth, counter
                )

        self.feature = np.asarray(nodes_feature, dtype=np.int32)
        self.threshold = np.asarray(nodes_threshold, dtype=np.int32)
        self.left = np.asarray(nodes_left, dtype=np.int32)
        self.right = np.asarray(nodes_right, dtype=np.int32)
        self.value = np.asarray(nodes_value, dtype=np.float64)
        self.n_leaves = leaves
        return self

    def _leaf_value(self, g: np.ndarray, h: np.ndarray, indices: np.ndarray) -> float:
        g_sum = float(g[indices].sum())
        h_sum = float(h[indices].sum())
        return -g_sum / (h_sum + self.params.reg_lambda)

    def _push_candidate(
        self,
        heap: list,
        binned: np.ndarray,
        g: np.ndarray,
        h: np.ndarray,
        features: np.ndarray,
        node_id: int,
        indices: np.ndarray,
        depth: int,
        counter,
    ) -> None:
        if len(indices) < 2 * self.params.min_samples_leaf:
            return
        best = self._best_split(binned, g, h, features, indices)
        if best is None:
            return
        gain, feature, bin_threshold = best
        heapq.heappush(
            heap,
            _LeafCandidate(
                gain=gain,
                node_id=node_id,
                feature=feature,
                bin_threshold=bin_threshold,
                indices=indices,
                depth=depth,
                order=next(counter),
            ),
        )

    def _best_split(
        self,
        binned: np.ndarray,
        g: np.ndarray,
        h: np.ndarray,
        features: np.ndarray,
        indices: np.ndarray,
    ) -> tuple[float, int, int] | None:
        params = self.params
        g_local = g[indices]
        h_local = h[indices]
        g_total = g_local.sum()
        h_total = h_local.sum()
        parent_score = g_total * g_total / (h_total + params.reg_lambda)

        best_gain = 0.0
        best: tuple[float, int, int] | None = None
        for feature in features:
            bins = binned[indices, feature]
            hist_g = np.bincount(bins, weights=g_local)
            if hist_g.size < 2:
                continue
            hist_h = np.bincount(bins, weights=h_local)
            hist_c = np.bincount(bins)

            gl = np.cumsum(hist_g)[:-1]
            hl = np.cumsum(hist_h)[:-1]
            cl = np.cumsum(hist_c)[:-1]
            gr = g_total - gl
            hr = h_total - hl
            cr = len(indices) - cl

            valid = (cl >= params.min_samples_leaf) & (cr >= params.min_samples_leaf)
            if not valid.any():
                continue
            gains = (
                gl * gl / (hl + params.reg_lambda)
                + gr * gr / (hr + params.reg_lambda)
                - parent_score
            )
            gains = np.where(valid, gains, -np.inf)
            best_bin = int(np.argmax(gains))
            gain = float(gains[best_bin])
            if gain > best_gain:
                best_gain = gain
                best = (gain, int(feature), best_bin)
        return best

    # -- prediction ----------------------------------------------------------

    def predict(self, binned: np.ndarray) -> np.ndarray:
        """Leaf values for pre-binned samples."""
        if self.feature is None:
            raise RuntimeError("tree not fitted")
        binned = np.asarray(binned, dtype=np.uint8)
        node = np.zeros(binned.shape[0], dtype=np.int32)
        for _ in range(self.params.max_depth + 1):
            feature = self.feature[node]
            active = feature >= 0
            if not active.any():
                break
            rows = np.flatnonzero(active)
            feats = feature[rows]
            go_left = binned[rows, feats] <= self.threshold[node[rows]]
            node[rows] = np.where(
                go_left, self.left[node[rows]], self.right[node[rows]]
            )
        return self.value[node]
