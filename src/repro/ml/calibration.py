"""Probability calibration (Platt scaling).

Model scores drive operational decisions (alarm budgets, VIRR estimates),
so calibrated probabilities matter: a "0.6" should fail ~60% of the time.
Platt scaling fits a one-dimensional logistic regression ``sigmoid(a*s+b)``
on held-out scores by Newton iterations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return np.where(
        x >= 0,
        1.0 / (1.0 + np.exp(-np.clip(x, None, 500))),
        np.exp(np.clip(x, -500, None)) / (1.0 + np.exp(np.clip(x, -500, None))),
    )


@dataclass
class PlattCalibrator:
    """sigmoid(a * score + b), fitted by Newton-Raphson on log-loss."""

    max_iterations: int = 50
    tolerance: float = 1e-8
    a_: float = 1.0
    b_: float = 0.0
    fitted_: bool = False

    def fit(self, scores, labels) -> "PlattCalibrator":
        scores = np.asarray(scores, dtype=float)
        labels = np.asarray(labels, dtype=float)
        if scores.shape != labels.shape or scores.ndim != 1:
            raise ValueError("scores and labels must be equal-length 1-D")
        if scores.size < 2 or len(np.unique(labels)) < 2:
            raise ValueError("need both classes to calibrate")

        # Platt's smoothed targets guard against overconfident endpoints.
        positives = labels.sum()
        negatives = labels.size - positives
        target_hi = (positives + 1.0) / (positives + 2.0)
        target_lo = 1.0 / (negatives + 2.0)
        targets = np.where(labels == 1.0, target_hi, target_lo)

        a, b = 1.0, 0.0
        for _ in range(self.max_iterations):
            p = _sigmoid(a * scores + b)
            w = np.clip(p * (1.0 - p), 1e-12, None)
            grad_a = float(np.sum((p - targets) * scores))
            grad_b = float(np.sum(p - targets))
            h_aa = float(np.sum(w * scores * scores)) + 1e-12
            h_ab = float(np.sum(w * scores))
            h_bb = float(np.sum(w)) + 1e-12
            det = h_aa * h_bb - h_ab * h_ab
            if abs(det) < 1e-18:
                break
            step_a = (h_bb * grad_a - h_ab * grad_b) / det
            step_b = (h_aa * grad_b - h_ab * grad_a) / det
            a -= step_a
            b -= step_b
            if abs(step_a) < self.tolerance and abs(step_b) < self.tolerance:
                break
        self.a_, self.b_, self.fitted_ = float(a), float(b), True
        return self

    def transform(self, scores) -> np.ndarray:
        if not self.fitted_:
            raise RuntimeError("calibrator not fitted")
        scores = np.asarray(scores, dtype=float)
        return _sigmoid(self.a_ * scores + self.b_)


def expected_calibration_error(
    labels, probabilities, bins: int = 10
) -> float:
    """ECE: |empirical positive rate - mean predicted probability| per bin,
    weighted by bin occupancy."""
    labels = np.asarray(labels, dtype=float)
    probabilities = np.asarray(probabilities, dtype=float)
    if labels.shape != probabilities.shape:
        raise ValueError("shape mismatch")
    edges = np.linspace(0.0, 1.0, bins + 1)
    indices = np.clip(np.digitize(probabilities, edges) - 1, 0, bins - 1)
    error = 0.0
    for b in range(bins):
        mask = indices == b
        if not mask.any():
            continue
        gap = abs(labels[mask].mean() - probabilities[mask].mean())
        error += gap * mask.mean()
    return float(error)
