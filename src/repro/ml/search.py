"""Hyperparameter search (the "AutoML" box of the paper's Figure 6).

Random search over GBDT hyperparameters with a group-aware validation
objective: candidates are scored by DIMM-level average precision on the
validation split, which is threshold-free and robust at small positive
counts.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.features.sampling import SampleSet, aggregate_by_dimm
from repro.ml.gbdt import GbdtClassifier, GbdtParams
from repro.ml.metrics import average_precision


@dataclass(frozen=True)
class SearchSpace:
    """Ranges for the random search (log-uniform where appropriate)."""

    learning_rate: tuple[float, float] = (0.02, 0.2)
    num_leaves: tuple[int, int] = (7, 63)
    min_samples_leaf: tuple[int, int] = (5, 60)
    colsample: tuple[float, float] = (0.5, 1.0)
    reg_lambda: tuple[float, float] = (0.1, 10.0)

    def sample(self, rng: np.random.Generator, base: GbdtParams) -> GbdtParams:
        def log_uniform(lo: float, hi: float) -> float:
            return float(np.exp(rng.uniform(np.log(lo), np.log(hi))))

        return replace(
            base,
            learning_rate=log_uniform(*self.learning_rate),
            num_leaves=int(rng.integers(self.num_leaves[0], self.num_leaves[1] + 1)),
            min_samples_leaf=int(
                rng.integers(self.min_samples_leaf[0], self.min_samples_leaf[1] + 1)
            ),
            colsample=float(rng.uniform(*self.colsample)),
            reg_lambda=log_uniform(*self.reg_lambda),
        )


@dataclass(frozen=True)
class SearchResult:
    params: GbdtParams
    validation_ap: float
    trial: int


def random_search_gbdt(
    train: SampleSet,
    validation: SampleSet,
    n_trials: int = 12,
    seed: int = 0,
    space: SearchSpace | None = None,
    base_params: GbdtParams | None = None,
) -> list[SearchResult]:
    """Evaluate ``n_trials`` random configurations; returns results sorted
    best-first.  The first entry's params are ready for a final refit."""
    if len(train) == 0 or len(validation) == 0:
        raise ValueError("train and validation must be non-empty")
    if validation.y.sum() == 0:
        raise ValueError("validation has no positives to score against")
    space = space or SearchSpace()
    base = base_params or GbdtParams(n_estimators=150, early_stopping_rounds=20)
    rng = np.random.default_rng(seed)

    results = []
    for trial in range(n_trials):
        params = space.sample(rng, replace(base, seed=seed + trial))
        model = GbdtClassifier(params)
        model.fit(train.X, train.y, eval_set=(validation.X, validation.y))
        _, val_y, val_scores = aggregate_by_dimm(
            validation, model.predict_proba(validation.X)
        )
        score = average_precision(val_y, val_scores)
        results.append(
            SearchResult(params=params, validation_ap=float(score), trial=trial)
        )
    results.sort(key=lambda r: -r.validation_ap)
    return results
