"""Model persistence.

The model registry needs durable artifacts: trees serialise to plain JSON
(arrays of node fields), the FT-Transformer and calibrators to ``.npz``
blobs.  Using open formats (JSON / NumPy) rather than pickle keeps
artifacts inspectable and safe to load.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.ml.forest import RandomForestClassifier, RandomForestParams
from repro.ml.gbdt import GbdtClassifier, GbdtParams
from repro.ml.tree import Binner, GradientTree, TreeParams


def _tree_to_dict(tree: GradientTree) -> dict:
    return {
        "params": vars(tree.params).copy() if hasattr(tree.params, "__dict__") else {
            field: getattr(tree.params, field)
            for field in tree.params.__dataclass_fields__
        },
        "feature": tree.feature.tolist(),
        "threshold": tree.threshold.tolist(),
        "left": tree.left.tolist(),
        "right": tree.right.tolist(),
        "value": tree.value.tolist(),
        "n_leaves": tree.n_leaves,
    }


def _tree_from_dict(payload: dict) -> GradientTree:
    tree = GradientTree(TreeParams(**payload["params"]))
    tree.feature = np.asarray(payload["feature"], dtype=np.int32)
    tree.threshold = np.asarray(payload["threshold"], dtype=np.int32)
    tree.left = np.asarray(payload["left"], dtype=np.int32)
    tree.right = np.asarray(payload["right"], dtype=np.int32)
    tree.value = np.asarray(payload["value"], dtype=np.float64)
    tree.n_leaves = payload["n_leaves"]
    return tree


def _binner_to_dict(binner: Binner) -> dict:
    return {
        "max_bins": binner.max_bins,
        "edges": [edges.tolist() for edges in binner.edges_],
    }


def _binner_from_dict(payload: dict) -> Binner:
    binner = Binner(payload["max_bins"])
    binner.edges_ = [np.asarray(edges, dtype=float) for edges in payload["edges"]]
    return binner


def save_gbdt(model: GbdtClassifier, path: str | Path) -> Path:
    """Serialise a fitted GBDT to JSON."""
    if model._binner is None:
        raise RuntimeError("model not fitted")
    path = Path(path)
    payload = {
        "format": "repro.gbdt.v1",
        "params": {
            field: getattr(model.params, field)
            for field in model.params.__dataclass_fields__
        },
        "bias": model._bias,
        "binner": _binner_to_dict(model._binner),
        "trees": [_tree_to_dict(tree) for tree in model._trees],
    }
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


def load_gbdt(path: str | Path) -> GbdtClassifier:
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("format") != "repro.gbdt.v1":
        raise ValueError(f"not a repro GBDT artifact: {path}")
    model = GbdtClassifier(GbdtParams(**payload["params"]))
    model._bias = payload["bias"]
    model._binner = _binner_from_dict(payload["binner"])
    model._trees = [_tree_from_dict(item) for item in payload["trees"]]
    model.best_iteration_ = len(model._trees)
    return model


def save_forest(model: RandomForestClassifier, path: str | Path) -> Path:
    """Serialise a fitted random forest to JSON."""
    if model._binner is None:
        raise RuntimeError("model not fitted")
    path = Path(path)
    payload = {
        "format": "repro.forest.v1",
        "params": {
            field: getattr(model.params, field)
            for field in model.params.__dataclass_fields__
        },
        "binner": _binner_to_dict(model._binner),
        "trees": [
            {"tree": _tree_to_dict(tree), "features": features.tolist()}
            for tree, features in model._trees
        ],
    }
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


def load_forest(path: str | Path) -> RandomForestClassifier:
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("format") != "repro.forest.v1":
        raise ValueError(f"not a repro forest artifact: {path}")
    model = RandomForestClassifier(RandomForestParams(**payload["params"]))
    model._binner = _binner_from_dict(payload["binner"])
    model._trees = [
        (_tree_from_dict(item["tree"]), np.asarray(item["features"], dtype=int))
        for item in payload["trees"]
    ]
    return model
