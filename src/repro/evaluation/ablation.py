"""Ablation studies (DESIGN.md experiments A1-A3).

A1 — feature-group knockout: retrain the best model with one feature group
zeroed out at a time; measures each group's contribution (the paper argues
CE-derived features dominate workload/environment ones).

A2 — labeling-window sweep: lead time and prediction-window size vs F1.

A3 — VIRR sensitivity to the cold-migration fraction y_c at fixed
operating points.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.evaluation.experiment import ModelResult, PlatformExperiment
from repro.evaluation.protocol import ExperimentProtocol
from repro.ml.virr import virr
from repro.simulator.fleet import SimulationResult


@dataclass(frozen=True)
class AblationRow:
    label: str
    result: ModelResult


def feature_group_ablation(
    simulation: SimulationResult,
    protocol: ExperimentProtocol,
    model_name: str = "lightgbm",
) -> list[AblationRow]:
    """A1: drop one feature group at a time and re-train."""
    experiment = PlatformExperiment.prepare(simulation, protocol)
    rows = [AblationRow("all_features", experiment.run_model(model_name))]
    for group in sorted(experiment.samples.feature_groups):
        ablated = PlatformExperiment(
            platform=experiment.platform,
            samples=experiment.samples,
            train=experiment.train.drop_feature_groups((group,)),
            validation=experiment.validation.drop_feature_groups((group,)),
            test=experiment.test.drop_feature_groups((group,)),
            protocol=protocol,
        )
        rows.append(AblationRow(f"without_{group}", ablated.run_model(model_name)))
    return rows


def window_sweep(
    simulation: SimulationResult,
    protocol: ExperimentProtocol,
    lead_hours: tuple[float, ...] = (0.0, 3.0, 24.0),
    prediction_windows_hours: tuple[float, ...] = (168.0, 360.0, 720.0),
    model_name: str = "lightgbm",
) -> list[AblationRow]:
    """A2: sensitivity to the labeling windows."""
    rows = []
    for lead in lead_hours:
        for window in prediction_windows_hours:
            variant = protocol.with_windows(
                lead_hours=lead, prediction_window_hours=window
            )
            experiment = PlatformExperiment.prepare(simulation, variant)
            result = experiment.run_model(model_name)
            rows.append(AblationRow(f"lead={lead:g}h window={window / 24:g}d", result))
    return rows


@dataclass(frozen=True)
class VirrSensitivityRow:
    y_c: float
    virr: float


def virr_sensitivity(
    result: ModelResult,
    y_c_values: tuple[float, ...] = (0.0, 0.05, 0.1, 0.2, 0.3, 0.45, 0.6),
) -> list[VirrSensitivityRow]:
    """A3: VIRR of a fixed operating point as y_c varies.

    Shows the paper's break-even behaviour: VIRR turns negative once y_c
    exceeds the model's precision.
    """
    rows = []
    for y_c in y_c_values:
        if result.recall == 0 or result.precision <= 0:
            value = 0.0
        else:
            value = virr(result.precision, result.recall, y_c)
        rows.append(VirrSensitivityRow(y_c=y_c, virr=value))
    return rows
