"""Experiment protocol: every knob of a Table-II style run in one place."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace

from repro.features.labeling import LabelingParams
from repro.features.sampling import SamplingParams
from repro.ml.virr import DEFAULT_COLD_FRACTION


@dataclass(frozen=True)
class ExperimentProtocol:
    """Simulation + feature + evaluation configuration for one study."""

    scale: float = 0.5
    duration_hours: float = 2880.0
    seed: int = 7
    labeling: LabelingParams = field(default_factory=LabelingParams)
    sampling: SamplingParams = field(default_factory=SamplingParams)
    y_c: float = DEFAULT_COLD_FRACTION
    threshold_objective: str = "f1"

    def with_windows(
        self,
        lead_hours: float | None = None,
        prediction_window_hours: float | None = None,
        observation_hours: float | None = None,
    ) -> "ExperimentProtocol":
        """Derive a protocol with different labeling windows (ablation A2)."""
        labeling = LabelingParams(
            observation_hours=(
                observation_hours
                if observation_hours is not None
                else self.labeling.observation_hours
            ),
            lead_hours=(
                lead_hours if lead_hours is not None else self.labeling.lead_hours
            ),
            prediction_window_hours=(
                prediction_window_hours
                if prediction_window_hours is not None
                else self.labeling.prediction_window_hours
            ),
        )
        return replace(self, labeling=labeling)

    def features_fingerprint(self) -> str:
        """Stable identity of everything that shapes an extracted SampleSet.

        Labeling and sampling parameters fully determine the samples drawn
        from a given simulation (the extraction engine does not — all
        engines are bit-identical), so this string is the protocol part of
        the artifact cache's SampleSet key.
        """
        return json.dumps(
            {"labeling": asdict(self.labeling), "sampling": asdict(self.sampling)},
            sort_keys=True,
        )


#: Fast protocol for unit/integration tests.
TEST_PROTOCOL = ExperimentProtocol(
    scale=0.1,
    duration_hours=1440.0,
    sampling=SamplingParams(max_samples_per_dimm=12),
)

#: Default protocol for examples.
DEFAULT_PROTOCOL = ExperimentProtocol()

#: Protocol for the paper-shape benchmark harnesses.
PAPER_PROTOCOL = ExperimentProtocol(scale=1.0, duration_hours=2880.0)
