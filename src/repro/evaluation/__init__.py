"""Evaluation harness: experiments, Table II, ablations, reporting."""

from repro.evaluation.ablation import (
    AblationRow,
    VirrSensitivityRow,
    feature_group_ablation,
    virr_sensitivity,
    window_sweep,
)
from repro.evaluation.experiment import (
    MODEL_BUILDERS,
    MODEL_ORDER,
    ModelResult,
    PlatformExperiment,
    run_platform,
)
from repro.evaluation.leadtime import LeadTimeStats, achieved_lead_times
from repro.evaluation.protocol import (
    DEFAULT_PROTOCOL,
    PAPER_PROTOCOL,
    TEST_PROTOCOL,
    ExperimentProtocol,
)
from repro.evaluation.reporting import (
    render_fig4,
    render_fig5,
    render_model_result_details,
    render_table1,
    render_table2,
)
from repro.evaluation.table2 import Table2Results, run_table2

__all__ = [
    "AblationRow",
    "LeadTimeStats",
    "achieved_lead_times",
    "DEFAULT_PROTOCOL",
    "ExperimentProtocol",
    "MODEL_BUILDERS",
    "MODEL_ORDER",
    "ModelResult",
    "PAPER_PROTOCOL",
    "PlatformExperiment",
    "TEST_PROTOCOL",
    "Table2Results",
    "VirrSensitivityRow",
    "feature_group_ablation",
    "render_fig4",
    "render_fig5",
    "render_model_result_details",
    "render_table1",
    "render_table2",
    "run_platform",
    "run_table2",
    "virr_sensitivity",
    "window_sweep",
]
