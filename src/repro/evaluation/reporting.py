"""ASCII rendering of the paper's tables and figures.

Every benchmark harness prints through these helpers so that a run of
``pytest benchmarks/ --benchmark-only`` reproduces the rows/series of the
paper's Tables I-II and Figures 4-5 in textual form.
"""

from __future__ import annotations

from repro.analysis.bit_patterns import BitPatternStat
from repro.analysis.dataset_stats import DatasetStats
from repro.analysis.ue_rates import UERateStat
from repro.evaluation.table2 import Table2Results
from repro.simulator.calibration import PAPER_TABLE1, PAPER_TABLE2
from repro.simulator.platforms import PLATFORM_ORDER

_DISPLAY = {
    "intel_purley": "Intel Purley",
    "intel_whitley": "Intel Whitley",
    "k920": "K920",
}

_MODEL_DISPLAY = {
    "risky_ce_pattern": "Risky CE Pattern [7]",
    "random_forest": "Random forest",
    "lightgbm": "LightGBM",
    "ft_transformer": "FT-Transformer",
    "ce_count_threshold": "CE-count threshold",
}


def render_table1(stats: dict[str, DatasetStats]) -> str:
    """Table I: dataset description, measured vs paper."""
    lines = [
        "TABLE I: Description of Dataset (measured | paper)",
        f"{'Platform':<16} {'DIMMs w/ CEs':>14} {'DIMMs w/ UEs':>14} "
        f"{'Predictable UE %':>22} {'Sudden UE %':>20}",
    ]
    for platform in PLATFORM_ORDER:
        measured = stats[platform]
        paper = PAPER_TABLE1[platform]
        lines.append(
            f"{_DISPLAY[platform]:<16} "
            f"{measured.dimms_with_ces:>6} |{paper.dimms_with_ces:>7} "
            f"{measured.dimms_with_ues:>6} |{paper.dimms_with_ues:>7} "
            f"{measured.predictable_share:>9.0%} |{paper.predictable_ue_share:>9.0%} "
            f"{measured.sudden_share:>9.0%} |{paper.sudden_ue_share:>8.0%}"
        )
    return "\n".join(lines)


def render_fig4(series: dict[str, dict[str, UERateStat]], width: int = 40) -> str:
    """Figure 4: relative % of UE per fault category, as ASCII bars."""
    lines = ["FIGURE 4: Relative % of UE by fault category"]
    peak = max(
        (stat.rate for stats in series.values() for stat in stats.values()),
        default=0.0,
    )
    peak = peak or 1.0
    categories = next(iter(series.values())).keys()
    for category in categories:
        lines.append(f"  {category}")
        for platform in PLATFORM_ORDER:
            stat = series[platform][category]
            bar = "#" * int(round(width * stat.rate / peak))
            lines.append(
                f"    {_DISPLAY[platform]:<14} {stat.rate:7.2%} "
                f"({stat.dimms_with_ue}/{stat.dimms}) {bar}"
            )
    return "\n".join(lines)


def render_fig5(
    panels_by_platform: dict[str, dict[str, dict[int, BitPatternStat]]],
    width: int = 30,
) -> str:
    """Figure 5: relative UE rate vs DQ/beat counts and intervals."""
    lines = ["FIGURE 5: Error-bit analysis (relative UE rate)"]
    for platform, panels in panels_by_platform.items():
        lines.append(f"  {_DISPLAY.get(platform, platform)}")
        for dimension, panel in panels.items():
            lines.append(f"    {dimension}")
            peak = max((stat.rate for stat in panel.values()), default=0.0) or 1.0
            for value, stat in panel.items():
                if stat.dimms == 0:
                    continue
                bar = "#" * int(round(width * stat.rate / peak))
                marker = " <-- peak" if stat.rate == peak and stat.rate > 0 else ""
                lines.append(
                    f"      {value}: {stat.rate:7.2%} ({stat.dimms:4d} DIMMs) "
                    f"{bar}{marker}"
                )
    return "\n".join(lines)


def render_table2(results: Table2Results, include_paper: bool = True) -> str:
    """Table II: algorithm performance, measured vs paper."""
    lines = [
        "TABLE II: Algorithm Performance Comparisons"
        " (measured; paper values in parentheses)",
        f"{'Algorithm':<22}" + "".join(f"{_DISPLAY[p]:^38}" for p in PLATFORM_ORDER),
        f"{'':<22}" + "   P      R      F1     VIRR   " * 3,
    ]
    for model in results.cells:
        row = f"{_MODEL_DISPLAY.get(model, model):<22}"
        for platform in PLATFORM_ORDER:
            cell = results.cells[model][platform]
            row += "  ".join(f"{v:>5}" for v in cell.as_row()) + "    "
        lines.append(row)
        if include_paper and model in PAPER_TABLE2:
            row = f"{'  (paper)':<22}"
            for platform in PLATFORM_ORDER:
                paper_cell = PAPER_TABLE2[model][platform]
                if paper_cell is None:
                    row += "  ".join(f"{'X':>5}" for _ in range(4)) + "    "
                else:
                    row += "  ".join(f"{v:>5.2f}" for v in paper_cell) + "    "
            lines.append(row)
    return "\n".join(lines)


def render_model_result_details(results: Table2Results) -> str:
    """Auxiliary detail block: sample-level AUC/AP and test populations."""
    lines = ["Details (sample-level metrics and test populations):"]
    for model, cells in results.cells.items():
        for platform, cell in cells.items():
            if not cell.supported:
                continue
            lines.append(
                f"  {model:<18} {platform:<15} "
                f"auc={cell.sample_auc:5.3f} ap={cell.sample_ap:.3f} "
                f"test_dimms={cell.test_dimms} positives={cell.test_positive_dimms} "
                f"threshold={cell.threshold:.3f}"
            )
    return "\n".join(lines)
