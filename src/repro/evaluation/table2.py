"""Table II harness: the full algorithm x platform comparison."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.evaluation.experiment import MODEL_ORDER, ModelResult, run_platform
from repro.evaluation.protocol import ExperimentProtocol
from repro.simulator.fleet import SimulationResult
from repro.simulator.platforms import PLATFORM_ORDER


@dataclass
class Table2Results:
    """model -> platform -> ModelResult."""

    cells: dict[str, dict[str, ModelResult]] = field(default_factory=dict)
    protocol: ExperimentProtocol | None = None

    def result(self, model: str, platform: str) -> ModelResult:
        return self.cells[model][platform]

    def best_f1_per_platform(self) -> dict[str, float]:
        best: dict[str, float] = {}
        for platform in PLATFORM_ORDER:
            scores = [
                self.cells[model][platform].f1
                for model in self.cells
                if self.cells[model][platform].supported
            ]
            best[platform] = max(scores) if scores else float("nan")
        return best

    def best_model_per_platform(self) -> dict[str, str]:
        best: dict[str, str] = {}
        for platform in PLATFORM_ORDER:
            candidates = [
                (self.cells[model][platform].f1, model)
                for model in self.cells
                if self.cells[model][platform].supported
            ]
            best[platform] = max(candidates)[1] if candidates else "none"
        return best


def run_table2(
    protocol: ExperimentProtocol,
    simulations: dict[str, SimulationResult] | None = None,
    model_names: tuple[str, ...] = MODEL_ORDER,
) -> Table2Results:
    """Regenerate Table II: every model on every platform.

    Without injected ``simulations`` this is a thin shim over the
    scenario API: a ``single_platform`` :class:`RunSpec` carrying this
    protocol, so campaigns and SampleSets flow through (and into) the
    artifact cache.  Passing ``simulations`` keeps the direct path for
    callers that already hold campaigns (tests, calibration studies).
    """
    if simulations is None:
        from repro.experiments.runner import run_spec
        from repro.experiments.spec import RunSpec

        spec = RunSpec(
            scenario="single_platform",
            platforms=PLATFORM_ORDER,
            models=tuple(model_names),
            scale=protocol.scale,
            hours=protocol.duration_hours,
            seed=protocol.seed,
            max_samples_per_dimm=protocol.sampling.max_samples_per_dimm,
        )
        return run_spec(spec, protocol=protocol).to_table2(protocol=protocol)
    results = Table2Results(protocol=protocol)
    per_platform = {
        platform: run_platform(simulation, protocol, model_names)
        for platform, simulation in simulations.items()
    }
    for model in model_names:
        results.cells[model] = {
            platform: per_platform[platform][model] for platform in per_platform
        }
    return results
