"""Lead-time analysis: how far in advance are UEs flagged?

The paper's prediction problem (Section IV) requires a lead time Δtl of up
to 3 hours so proactive migration can happen before the failure.  This
module measures the *achieved* lead time: for every correctly predicted
test DIMM, the gap between its first flagged sample and its UE.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.features.sampling import SampleSet


@dataclass(frozen=True)
class LeadTimeStats:
    """Distribution of achieved lead times over true positives."""

    lead_hours: tuple[float, ...]  # one entry per correctly flagged DIMM

    @property
    def count(self) -> int:
        return len(self.lead_hours)

    @property
    def median_hours(self) -> float:
        return float(np.median(self.lead_hours)) if self.lead_hours else 0.0

    @property
    def min_hours(self) -> float:
        return float(min(self.lead_hours)) if self.lead_hours else 0.0

    def fraction_at_least(self, hours: float) -> float:
        """Share of catches with at least this much warning (e.g. Δtl=3h)."""
        if not self.lead_hours:
            return 0.0
        return float(np.mean(np.asarray(self.lead_hours) >= hours))


def achieved_lead_times(
    samples: SampleSet,
    scores: np.ndarray,
    threshold: float,
    ue_hours: dict[str, float],
) -> LeadTimeStats:
    """Lead times of flagged DIMMs that did fail.

    ``ue_hours`` maps dimm_id -> first UE timestamp; DIMMs without an entry
    are treated as non-failing.
    """
    scores = np.asarray(scores, dtype=float)
    if scores.shape[0] != len(samples):
        raise ValueError("scores do not match samples")
    first_alarm: dict[str, float] = {}
    for dimm_id, t, score in zip(samples.dimm_ids, samples.times, scores):
        if score >= threshold:
            current = first_alarm.get(dimm_id)
            if current is None or t < current:
                first_alarm[dimm_id] = float(t)
    leads = []
    for dimm_id, alarm_hour in first_alarm.items():
        ue_hour = ue_hours.get(dimm_id)
        if ue_hour is not None and ue_hour > alarm_hour:
            leads.append(ue_hour - alarm_hour)
    return LeadTimeStats(lead_hours=tuple(sorted(leads)))
