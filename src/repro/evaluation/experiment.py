"""End-to-end experiment runner: simulate -> features -> train -> evaluate.

The evaluation granularity is the DIMM (the unit that gets migrated /
replaced): sample scores are aggregated per DIMM with max-pooling, the
decision threshold is tuned on held-out *validation DIMMs* from the
training period, and precision / recall / F1 / VIRR are reported on the
temporally disjoint test period — mirroring how the paper's production
pipeline consumes predictions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.heuristics import CeCountThresholdModel
from repro.baselines.risky_ce import RiskyCePatternModel
from repro.evaluation.protocol import ExperimentProtocol
from repro.experiments.registry import MODELS, register_model
from repro.features.pipeline import FeaturePipeline, FeaturePipelineConfig
from repro.features.sampling import SampleSet, aggregate_by_dimm, temporal_split
from repro.ml.forest import RandomForestClassifier, RandomForestParams
from repro.ml.ft_transformer import FtTransformerClassifier, FtTransformerParams
from repro.ml.gbdt import GbdtClassifier, GbdtParams
from repro.ml.metrics import average_precision, confusion, roc_auc
from repro.ml.virr import virr
from repro.simulator.fleet import SimulationResult

#: Table II row order.
MODEL_ORDER = ("risky_ce_pattern", "random_forest", "lightgbm", "ft_transformer")

#: Sentinel: "tune the alarm-budget flag rate on this experiment's splits"
#: (``None`` is a legal explicit value meaning the no-positives fallback).
_TUNE_FLAG_RATE = object()


@register_model("risky_ce_pattern")
def _build_risky(feature_names: list[str], seed: int):
    return RiskyCePatternModel(feature_names)


@register_model("random_forest")
def _build_forest(feature_names: list[str], seed: int):
    return RandomForestClassifier(RandomForestParams(n_estimators=150, seed=seed))


@register_model("lightgbm")
def _build_gbdt(feature_names: list[str], seed: int):
    return GbdtClassifier(GbdtParams(n_estimators=250, seed=seed))


@register_model("ft_transformer")
def _build_ft(feature_names: list[str], seed: int):
    return FtTransformerClassifier(
        FtTransformerParams(dim=24, n_heads=4, n_blocks=2, ffn_hidden=48,
                            max_epochs=35, patience=6, seed=seed)
    )


@register_model("ce_count_threshold")
def _build_ce_count(feature_names: list[str], seed: int):
    return CeCountThresholdModel(feature_names)


#: Back-compat alias: the model registry satisfies the read-only mapping
#: contract the old hand-rolled builder dict exposed.
MODEL_BUILDERS = MODELS


@dataclass(frozen=True)
class ModelResult:
    """One (platform, model) cell of Table II."""

    platform: str
    model_name: str
    supported: bool
    precision: float = float("nan")
    recall: float = float("nan")
    f1: float = float("nan")
    virr: float = float("nan")
    threshold: float = float("nan")
    sample_auc: float = float("nan")
    sample_ap: float = float("nan")
    test_dimms: int = 0
    test_positive_dimms: int = 0

    def as_row(self) -> tuple:
        if not self.supported:
            return ("X", "X", "X", "X")
        return (
            f"{self.precision:.2f}",
            f"{self.recall:.2f}",
            f"{self.f1:.2f}",
            f"{self.virr:.2f}",
        )


@dataclass
class PlatformExperiment:
    """Prepared data of one platform, reusable across models."""

    platform: str
    samples: SampleSet
    train: SampleSet
    validation: SampleSet
    test: SampleSet
    protocol: ExperimentProtocol

    @classmethod
    def prepare(
        cls,
        simulation: SimulationResult,
        protocol: ExperimentProtocol,
        engine: str | None = None,
        workers: int | None = None,
    ) -> "PlatformExperiment":
        pipeline = FeaturePipeline(
            FeaturePipelineConfig(
                labeling=protocol.labeling, sampling=protocol.sampling
            )
        )
        samples = pipeline.build_samples(
            simulation.store,
            platform=simulation.platform.name,
            campaign_end_hour=simulation.duration_hours,
            engine=engine,
            workers=workers,
        )
        return cls.from_samples(samples, protocol, simulation.duration_hours)

    @classmethod
    def from_samples(
        cls,
        samples: SampleSet,
        protocol: ExperimentProtocol,
        campaign_hours: float,
    ) -> "PlatformExperiment":
        """Split an already extracted (possibly cache-served) sample set."""
        split = temporal_split(samples, campaign_hours, protocol.sampling)
        return cls(
            platform=samples.platform,
            samples=samples,
            train=split.train,
            validation=split.validation,
            test=split.test,
            protocol=protocol,
        )

    def _alarm_budget_flag_rate(self, model) -> float | None:
        """Alarm-budget flag rate tuned on the training period.

        With few positive DIMMs, a raw score threshold tuned on validation
        transfers poorly across time (score calibration drifts as the fleet
        ages).  Production systems instead fix an *alarm budget*: flag the
        top fraction of units.  The budget multiple (flagged fraction /
        training positive fraction) is the tuned hyperparameter — selected
        on training-period DIMMs only, no test data involved — so one tuned
        rate serves every test fleet a trained model is applied to (the
        transfer matrix tunes once per row).  Returns ``None`` when the
        tuning period has no positive DIMMs.
        """
        tune_y_parts = []
        tune_score_parts = []
        for split in (self.train, self.validation):
            if len(split) == 0:
                continue
            _, split_y, split_scores = aggregate_by_dimm(
                split, model.predict_proba(split.X)
            )
            tune_y_parts.append(split_y)
            tune_score_parts.append(split_scores)
        tune_y = np.concatenate(tune_y_parts)
        tune_scores = np.concatenate(tune_score_parts)
        positive_rate = float(tune_y.mean()) if tune_y.size else 0.0
        if positive_rate == 0.0:
            return None

        best_factor, best_f1 = 1.5, -1.0
        for factor in (0.75, 1.0, 1.25, 1.5, 2.0, 3.0):
            rate = min(0.5, factor * positive_rate)
            cut = float(np.quantile(tune_scores, 1.0 - rate))
            counts = confusion(tune_y, (tune_scores >= cut).astype(int))
            if counts.f1 > best_f1:
                best_f1, best_factor = counts.f1, factor
        return min(0.5, best_factor * positive_rate)

    @staticmethod
    def _apply_flag_rate(flag_rate: float | None, test_scores: np.ndarray) -> float:
        """The flag rate as a score threshold on one test fleet's quantile."""
        if flag_rate is None:  # no tuning positives: flag the top 5%
            return float(np.quantile(test_scores, 0.95)) if test_scores.size else 0.5
        return float(np.quantile(test_scores, 1.0 - flag_rate))

    def run_model(
        self,
        model_name: str,
        model=None,
        refit: bool = True,
        flag_rate: "float | None" = _TUNE_FLAG_RATE,
    ) -> ModelResult:
        """Train one model and evaluate it at DIMM granularity.

        ``refit=False`` (only meaningful with an explicit ``model``) skips
        the ``fit`` call, and an explicit ``flag_rate`` (a float, or
        ``None`` for the no-positives fallback) skips the alarm-budget
        tuning — for callers that evaluate one trained model against
        several test sets, e.g. a transfer-matrix row.
        """
        protocol = self.protocol
        if model is None:
            builder = MODEL_BUILDERS[model_name]
            model = builder(self.samples.feature_names, protocol.seed)
            refit = True

        supports = getattr(model, "supports", None)
        if supports is not None and not supports(self.platform):
            return ModelResult(
                platform=self.platform, model_name=model_name, supported=False
            )
        if min(len(self.train), len(self.validation), len(self.test)) == 0:
            raise ValueError(
                f"empty split for {self.platform}: "
                f"train={len(self.train)}, val={len(self.validation)}, "
                f"test={len(self.test)}"
            )

        if refit:
            model.fit(
                self.train.X,
                self.train.y,
                eval_set=(self.validation.X, self.validation.y),
            )

        test_sample_scores = model.predict_proba(self.test.X)
        _, test_y, test_scores = aggregate_by_dimm(self.test, test_sample_scores)

        if getattr(model, "fixed_operating_point", False):
            # Rule-based models emit binary decisions; no threshold tuning.
            threshold = 0.5
        else:
            if flag_rate is _TUNE_FLAG_RATE:
                flag_rate = self._alarm_budget_flag_rate(model)
            threshold = self._apply_flag_rate(flag_rate, test_scores)
        predictions = (test_scores >= threshold).astype(int)
        counts = confusion(test_y, predictions)
        model_virr = (
            virr(counts.precision, counts.recall, protocol.y_c)
            if counts.recall > 0
            else 0.0
        )

        if self.test.y.sum() > 0 and self.test.y.sum() < len(self.test):
            sample_auc = roc_auc(self.test.y, test_sample_scores)
            sample_ap = average_precision(self.test.y, test_sample_scores)
        else:
            sample_auc = float("nan")
            sample_ap = float("nan")

        return ModelResult(
            platform=self.platform,
            model_name=model_name,
            supported=True,
            precision=counts.precision,
            recall=counts.recall,
            f1=counts.f1,
            virr=model_virr,
            threshold=float(threshold),
            sample_auc=sample_auc,
            sample_ap=sample_ap,
            test_dimms=int(len(test_y)),
            test_positive_dimms=int(test_y.sum()),
        )


def run_platform(
    simulation: SimulationResult,
    protocol: ExperimentProtocol,
    model_names: tuple[str, ...] = MODEL_ORDER,
) -> dict[str, ModelResult]:
    """All models on one platform."""
    experiment = PlatformExperiment.prepare(simulation, protocol)
    return {name: experiment.run_model(name) for name in model_names}
