"""Replay coordinator: fan fleet-replay partitions out, merge bit-for-bit.

The coordinator shards the fleet by DIMM (see
:mod:`repro.distributed.shards`), runs one
:class:`~repro.fleetops.engine.FleetReplayEngine` per shard in a worker
process, and merges the per-partition score logs, alarm managers and
event-bus traffic back into one :class:`FleetReport` that is
**bit-for-bit identical** to the single-process replay:

* every replay decision is per-DIMM (min-CE gating, rescore throttle,
  alarm suppression window, incident lifecycle) and the model is
  stateless across rows; workers run with the engine's
  ``coherent_flush`` mode so micro-batch flush timing — the one
  cross-DIMM coupling (admission consults the alarm state, incidents
  open at flush) — cannot leak between DIMMs, and a DIMM partition
  reproduces exactly the scores and incidents its DIMMs see in the
  full merged walk.  The single-process baseline the parity suite and
  CI gate compare against runs with the same mode;
* score logs are concatenated and stably sorted by ``(t, dimm_id)`` —
  the canonical order the parity suite compares in;
* per-platform alarm managers merge by concatenating incidents (sorted
  by ``(opened_hour, dimm_id)``), unioning the disjoint per-DIMM UE
  maps, and summing counters; every field of
  :meth:`AlarmManager.summary` is an order-invariant reduction over
  incidents, so the merged summary equals the single-process one;
* each worker records its bus traffic via an ``ALL_TOPICS`` subscriber
  and ships the ``(topic, payload)`` batch home; the coordinator
  republishes them in partition order, so downstream subscribers and
  ``bus_counts`` see exactly the single-process event totals — the
  ``EventBus`` is the cross-process fan-in seam;
* workers replay with ``policy=None``; mitigation is applied
  coordinator-side over the merged incidents in canonical
  ``(opened_hour, platform, dimm_id)`` order, then costs settle on the
  merged alarm managers.  (In-engine policy feed order depends on
  micro-batch flush timing, so the deterministic canonical order is the
  distributed contract; the parity suite applies the same canonical
  pass to the single-process baseline when comparing settled costs.)

Fault tolerance reuses the PR 7 machinery end to end: the process pool
falls back to threads then inline on pool-level failures, a worker that
dies with a transient error is retried with backoff and finally rerun
inline, a worker halted mid-partition (``halt_after``) leaves a
checkpoint that the coordinator resumes deterministically, and
duplicate result delivery is idempotent (partitions merge keyed by
index, first result wins).
"""

from __future__ import annotations

import pickle
import tempfile
import time
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.distributed.shards import ShardManifest, load_shard, write_fleet_shards
from repro.features.labeling import LabelingParams
from repro.features.pipeline import _extract_fleet_shard
from repro.features.sampling import SampleSet, thinning_jitters
from repro.fleetops.cost import CostModel, combine_summaries
from repro.fleetops.engine import (
    _NULL_POLICY,
    FleetReplayEngine,
    FleetReport,
    ServingAssignment,
    _ColumnsStore,
)
from repro.fleetops.stream import merge_fleet_streams
from repro.obs.bridge import Observability
from repro.obs.tracing import NULL_TRACER
from repro.streaming.alarms import AlarmManager
from repro.streaming.bus import ALL_TOPICS, EventBus


@dataclass
class PartitionOutcome:
    """Everything one worker ships home for one partition."""

    index: int
    halted: bool = False
    checkpoint: str | None = None
    events: int = 0
    seconds: float = 0.0
    predict_seconds: float = 0.0
    #: platform -> {"alarms": AlarmManager, "score_log": [...], counters}.
    platforms: dict = field(default_factory=dict)
    #: The worker bus's traffic, in publish order.
    bus_events: list = field(default_factory=list)
    #: The worker bus's final per-topic counts.  Equals the recorded
    #: traffic for an uninterrupted run; a checkpoint-resumed run only
    #: records post-resume publishes, so the coordinator reconciles its
    #: counts against these (the resumed engine restores the pre-halt
    #: accounting from the snapshot).
    bus_counts: dict = field(default_factory=dict)
    health: dict = field(default_factory=dict)
    #: The worker's serialized Observability bundle (metrics snapshot +
    #: span tree + heartbeat progress), when the coordinator runs with
    #: observability on.  Folded into the coordinator registry under a
    #: ``worker="wN"`` label and grafted into the coordinator span tree.
    obs_payload: dict | None = None


def _replay_partition(payload: dict) -> PartitionOutcome:
    """Worker body: replay one shard with a private engine and bus.

    Module-level so it pickles into worker processes (the same
    constraint as ``features.pipeline._extract_payload``).
    """
    manifest = ShardManifest.from_dict(payload["manifest"])
    index = payload["index"]
    columns_by = load_shard(
        payload["shard_dir"], manifest, index, mmap=payload["mmap"]
    )
    stores = {
        platform: _ColumnsStore(columns)
        for platform, columns in columns_by.items()
        if len(columns.ces) + len(columns.ues) + len(columns.events)
    }
    outcome = PartitionOutcome(index=index)
    if payload.get("fail_partition") == index:
        # Test hook: simulate a worker crash once (a marker on shared
        # disk makes the retry succeed, like a real transient death).
        marker = Path(payload["shard_dir"]) / f"failed_{index:04d}.marker"
        if not marker.exists():
            marker.write_text("injected", encoding="utf-8")
            raise OSError(f"injected worker failure on partition {index}")
    if not stores:
        return outcome
    bus = EventBus()
    bus.subscribe(
        ALL_TOPICS,
        lambda topic, event: outcome.bus_events.append((topic, event)),
    )
    wobs = Observability() if payload.get("observability") else None
    engine = FleetReplayEngine(
        payload["assignments"],
        labeling=payload["labeling"],
        policy=None,
        cost_model=CostModel(),
        bus=bus,
        min_ces_before_scoring=payload["min_ces_before_scoring"],
        rescore_interval_hours=payload["rescore_interval_hours"],
        batch_size=payload["batch_size"],
        engine=payload["engine"],
        collect_scores=True,
        end_hours=payload["end_hours"],
        coherent_flush=True,
        obs=wobs,
        heartbeat_every=payload.get("heartbeat_every", 0),
    )
    stream = merge_fleet_streams(
        stores, decode_payloads=(payload["engine"] != "batched")
    )
    report = engine.replay(
        stream,
        stores,
        checkpoint_path=payload.get("checkpoint_path"),
        resume_from=payload.get("resume_from"),
        halt_after=payload.get("halt_after"),
    )
    outcome.events = report.events
    outcome.seconds = report.seconds
    outcome.predict_seconds = report.predict_seconds
    if report.halted:
        outcome.halted = True
        outcome.checkpoint = payload.get("checkpoint_path")
        outcome.bus_events = []  # superseded by the resumed run's outcome
        return outcome
    outcome.bus_counts = bus.counts()
    outcome.health = dict(report.health)
    if wobs is not None:
        # Plain dicts/lists only — pickles cleanly across the pool seam.
        outcome.obs_payload = wobs.payload()
    for platform, runtime in engine.runtimes.items():
        alarms = runtime.alarms
        alarms.bus = None  # handler closures don't pickle
        outcome.platforms[platform] = {
            "alarms": alarms,
            "score_log": engine.score_logs.get(platform, []),
            "events": report.platforms[platform]["events"],
            "ces": report.platforms[platform]["ces"],
            "ues": report.platforms[platform]["ues"],
            "mem_events": report.platforms[platform]["mem_events"],
            "scored": runtime.scored,
            "batches": runtime.batches,
            "scored_dimms": len(runtime.scored_dimms),
            "fallbacks": runtime.fallbacks(),
            "rebuilds": runtime.rebuilds(),
            "health": report.platforms[platform]["health"],
        }
    return outcome


def _partition_result(
    pool, fn, payload, future, retries: int = 2, backoff: float = 0.05
):
    """One partition's result with the crashed-worker retry taxonomy.

    Mirrors ``features.pipeline._shard_result``: a broken pool re-raises
    so the caller falls back to the next pool class wholesale; a
    transient worker death (OSError / pickling / memory) retries with
    backoff and finally reruns inline; anything else is a genuine bug.
    """
    for attempt in range(retries):
        try:
            return future.result()
        except BrokenExecutor:
            raise
        except (OSError, pickle.PicklingError, MemoryError):
            time.sleep(backoff * (2**attempt))
            try:
                future = pool.submit(fn, payload)
            except (RuntimeError, BrokenExecutor):
                return fn(payload)
    try:
        return future.result()
    except BrokenExecutor:
        raise
    except (OSError, pickle.PicklingError, MemoryError):
        return fn(payload)


def _run_pool(fn, payloads: list, workers: int) -> list:
    """Run ``fn`` over ``payloads``: process pool -> threads -> inline.

    The same resilience ladder as the sharded sample build — each rung
    catches pool-construction/teardown failures wholesale, and the
    inline rung gives every transient worker death one retry.
    """
    if workers > 1 and len(payloads) > 1:
        for pool_cls in (ProcessPoolExecutor, ThreadPoolExecutor):
            try:
                with pool_cls(
                    max_workers=min(workers, len(payloads))
                ) as pool:
                    futures = [
                        pool.submit(fn, payload) for payload in payloads
                    ]
                    return [
                        _partition_result(pool, fn, payload, future)
                        for payload, future in zip(payloads, futures)
                    ]
            except (
                OSError,
                PermissionError,
                RuntimeError,
                pickle.PicklingError,
                BrokenExecutor,
            ):
                continue
    results = []
    for payload in payloads:
        try:
            results.append(fn(payload))
        except (OSError, pickle.PicklingError, MemoryError):
            results.append(fn(payload))
    return results


class ReplayCoordinator:
    """Shard a fleet, replay partitions in workers, merge bit-for-bit."""

    def __init__(
        self,
        assignments: dict[str, ServingAssignment],
        labeling: LabelingParams | None = None,
        *,
        policy=None,
        cost_model: CostModel | None = None,
        bus: EventBus | None = None,
        workers: int = 2,
        n_shards: int | None = None,
        min_ces_before_scoring: int = 2,
        rescore_interval_hours: float = 0.0,
        batch_size: int = 256,
        engine: str = "batched",
        shard_dir=None,
        mmap: bool = True,
        obs=None,
        heartbeat_every: int = 0,
    ):
        if not assignments:
            raise ValueError("ReplayCoordinator needs at least one assignment")
        self.assignments = dict(assignments)
        self.labeling = labeling if labeling is not None else LabelingParams()
        self.policy = policy
        self.cost_model = cost_model or CostModel()
        self.bus = bus if bus is not None else EventBus()
        self.workers = max(1, int(workers))
        self.n_shards = int(n_shards) if n_shards else self.workers
        self.min_ces_before_scoring = int(min_ces_before_scoring)
        self.rescore_interval_hours = float(rescore_interval_hours)
        self.batch_size = int(batch_size)
        self.engine = engine
        self.shard_dir = shard_dir
        self.mmap = bool(mmap)
        #: Populated by :meth:`replay` (same surface as the engine's).
        self.score_logs: dict[str, list] = {}
        self.alarm_managers: dict[str, AlarmManager] = {}
        self.cost_summaries: dict = {}
        self.manifest: ShardManifest | None = None
        #: Optional :class:`repro.obs.Observability` bundle — spans cover
        #: shard write, worker fan-out (one recorded child per partition,
        #: deterministic: partition count is fixed by the manifest) and
        #: merge; the merged report fills the registry.
        self.obs = obs
        self._tracer = obs.tracer if obs is not None else NULL_TRACER
        #: Shipped to every worker: each worker engine publishes its own
        #: live heartbeats into its private registry, which comes home in
        #: :attr:`PartitionOutcome.obs_payload`.
        self.heartbeat_every = int(heartbeat_every)

    # -- orchestration -----------------------------------------------------

    def replay(
        self,
        stores: dict[str, object],
        *,
        shards: tuple | None = None,
        halt_partition: int | None = None,
        halt_after: int | None = None,
        fail_partition: int | None = None,
    ) -> FleetReport:
        """Shard ``stores``, replay every partition, merge the results.

        ``shards`` optionally reuses a pre-written ``(dir, manifest)``
        pair (e.g. from the artifact cache).  ``halt_partition`` /
        ``halt_after`` kill one worker after N walked entries — the
        coordinator resumes it from its checkpoint; ``fail_partition``
        injects a crash on first delivery (retry-path coverage).  Both
        are test/chaos knobs; merged output is identical either way.
        """
        start = time.perf_counter()
        global_stream = merge_fleet_streams(stores, decode_payloads=False)
        if shards is not None:
            shard_dir, manifest = shards
            return self._replay_sharded(
                Path(shard_dir), manifest, global_stream, start,
                halt_partition, halt_after, fail_partition,
            )
        if self.shard_dir is not None:
            shard_dir = Path(self.shard_dir)
            with self._tracer.span("coordinator.shard_write"):
                manifest = write_fleet_shards(
                    {p: s.columns for p, s in stores.items()},
                    self.n_shards,
                    shard_dir,
                )
            return self._replay_sharded(
                shard_dir, manifest, global_stream, start,
                halt_partition, halt_after, fail_partition,
            )
        with tempfile.TemporaryDirectory(prefix="repro-shards-") as tmp:
            shard_dir = Path(tmp)
            with self._tracer.span("coordinator.shard_write"):
                manifest = write_fleet_shards(
                    {p: s.columns for p, s in stores.items()},
                    self.n_shards,
                    shard_dir,
                )
            return self._replay_sharded(
                shard_dir, manifest, global_stream, start,
                halt_partition, halt_after, fail_partition,
            )

    def _payloads(
        self,
        shard_dir: Path,
        manifest: ShardManifest,
        end_hours: dict,
        halt_partition,
        halt_after,
        fail_partition,
    ) -> list[dict]:
        payloads = []
        for entry in manifest.shards:
            index = entry["index"]
            payload = {
                "shard_dir": str(shard_dir),
                "manifest": manifest.to_dict(),
                "index": index,
                "assignments": self.assignments,
                "labeling": self.labeling,
                "min_ces_before_scoring": self.min_ces_before_scoring,
                "rescore_interval_hours": self.rescore_interval_hours,
                "batch_size": self.batch_size,
                "engine": self.engine,
                "end_hours": end_hours,
                "mmap": self.mmap,
                "checkpoint_path": None,
                "resume_from": None,
                "halt_after": None,
                "fail_partition": fail_partition,
                "observability": self.obs is not None,
                "heartbeat_every": self.heartbeat_every,
            }
            if halt_partition == index and halt_after is not None:
                payload["halt_after"] = int(halt_after)
                payload["checkpoint_path"] = str(
                    shard_dir / f"checkpoint_{index:04d}.pkl"
                )
            payloads.append(payload)
        return payloads

    def _run_payloads(self, payloads: list[dict]) -> list[PartitionOutcome]:
        outcomes = _run_pool(_replay_partition, payloads, self.workers)
        # A halted worker left its checkpoint on shared disk; resume it
        # deterministically (PR 7 pins resumed == uninterrupted).
        resumed = []
        for payload, outcome in zip(payloads, outcomes):
            while outcome is not None and outcome.halted:
                resume = dict(
                    payload,
                    halt_after=None,
                    resume_from=outcome.checkpoint,
                    fail_partition=None,
                )
                outcome = _replay_partition(resume)
            resumed.append(outcome)
        return resumed

    # -- merging -----------------------------------------------------------

    def merge(
        self,
        outcomes: list[PartitionOutcome],
        global_stream,
        wall_seconds: float,
    ) -> FleetReport:
        """Fold partition outcomes into one canonical fleet report.

        Duplicate deliveries of the same partition are idempotent: the
        first outcome per index wins, later ones are dropped.
        """
        by_index: dict[int, PartitionOutcome] = {}
        for outcome in outcomes:
            if outcome is not None and outcome.index not in by_index:
                by_index[outcome.index] = outcome
        ordered = [by_index[index] for index in sorted(by_index)]

        # Cross-process fan-in: worker buses recorded their traffic;
        # republishing in partition order reproduces the single-process
        # per-topic counts on the coordinator bus.  A checkpoint-resumed
        # partition only recorded post-resume publishes (pre-halt counts
        # live in its restored accounting), so any deficit between a
        # worker's final counts and its recorded traffic is reconciled
        # numerically after the republish.
        deficits: dict[str, int] = {}
        for outcome in ordered:
            recorded: dict[str, int] = {}
            for topic, event in outcome.bus_events:
                self.bus.publish(topic, event)
                recorded[topic] = recorded.get(topic, 0) + 1
            for topic, count in outcome.bus_counts.items():
                delta = count - recorded.get(topic, 0)
                if delta:
                    deficits[topic] = deficits.get(topic, 0) + delta
        if deficits:
            counts = self.bus.counts()
            for topic, delta in deficits.items():
                counts[topic] = counts.get(topic, 0) + delta
            self.bus.restore_counts(counts)

        platforms = list(global_stream.platforms)
        merged_alarms: dict[str, AlarmManager] = {}
        merged_logs: dict[str, list] = {}
        totals: dict[str, dict] = {}
        for platform in platforms:
            merged_alarms[platform] = AlarmManager(
                self.labeling.lead_hours,
                self.labeling.prediction_window_hours,
                bus=None,
            )
            merged_logs[platform] = []
            totals[platform] = {
                "scored": 0, "batches": 0, "scored_dimms": 0,
                "fallbacks": 0, "rebuilds": 0, "rejected_events": 0,
                "rejects": {},
            }
        predict_seconds = 0.0
        for outcome in ordered:
            predict_seconds += outcome.predict_seconds
            for platform, part in outcome.platforms.items():
                merged = merged_alarms[platform]
                alarms: AlarmManager = part["alarms"]
                merged.incidents.extend(alarms.incidents)
                merged.ue_hours.update(alarms.ue_hours)
                merged.ue_predictable.update(alarms.ue_predictable)
                merged.raised += alarms.raised
                merged.suppressed += alarms.suppressed
                merged.expired += alarms.expired
                merged.resolved += alarms.resolved
                merged_logs[platform].extend(part["score_log"])
                total = totals[platform]
                total["scored"] += part["scored"]
                total["batches"] += part["batches"]
                total["scored_dimms"] += part["scored_dimms"]
                total["fallbacks"] += part["fallbacks"]
                total["rebuilds"] += part["rebuilds"]
                health = part["health"]
                total["rejected_events"] += health["rejected_events"]
                for reason, count in health["rejects"].items():
                    total["rejects"][reason] = (
                        total["rejects"].get(reason, 0) + count
                    )
        # Canonical orders: logs by (t, dimm), incidents by (open, dimm).
        for platform in platforms:
            merged_logs[platform].sort(key=lambda row: (row[1], row[0]))
            merged_alarms[platform].incidents.sort(
                key=lambda inc: (inc.opened_hour, inc.dimm_id)
            )
        self.score_logs = merged_logs
        self.alarm_managers = merged_alarms

        apply_policy(self.policy, merged_alarms, global_stream.end_hours)

        report = FleetReport(engine=self.engine)
        summaries = []
        for platform in platforms:
            alarms = merged_alarms[platform]
            assignment = self.assignments[platform]
            counts = global_stream.counts[platform]
            total = totals[platform]
            live_from = float(assignment.live_from_hour)
            summary, ledger = self.cost_model.settle(
                platform,
                alarms,
                self.policy if self.policy is not None else _NULL_POLICY,
                live_from,
            )
            self.cost_summaries[platform] = summary
            summaries.append(summary)
            report.costs[platform] = summary.to_dict()
            report.platforms[platform] = {
                "model": assignment.model_name,
                "train_platform": assignment.train_platform,
                "threshold": float(assignment.threshold),
                "live_from_hour": live_from,
                "events": sum(counts.values()),
                "ces": counts["ces"],
                "ues": counts["ues"],
                "mem_events": counts["events"],
                "scored": total["scored"],
                "batches": total["batches"],
                "scored_dimms": total["scored_dimms"],
                "fallbacks": total["fallbacks"],
                "alarms": alarms.summary(live_from),
                "health": {
                    "rejected_events": total["rejected_events"],
                    "rejects": dict(total["rejects"]),
                    "fallback_scores": total["fallbacks"],
                    "late_rebuilds": total["rebuilds"],
                    "outage_seconds": 0.0,
                },
            }
            report.scored += total["scored"]
        fleet = combine_summaries(summaries)
        self.cost_summaries["fleet"] = fleet
        report.fleet_cost = fleet.to_dict()
        report.actions = (
            self.policy.summary() if self.policy is not None else {}
        )
        report.events = global_stream.events
        report.seconds = wall_seconds
        report.predict_seconds = predict_seconds
        report.events_per_second = (
            report.events / wall_seconds if wall_seconds > 0 else 0.0
        )
        report.bus_counts = self.bus.counts()
        fleet_rejects: dict[str, int] = {}
        for total in totals.values():
            for reason, count in total["rejects"].items():
                fleet_rejects[reason] = fleet_rejects.get(reason, 0) + count
        report.health = {
            "rejected_events": sum(
                total["rejected_events"] for total in totals.values()
            ),
            "rejects": fleet_rejects,
            "fallback_scores": sum(
                total["fallbacks"] for total in totals.values()
            ),
            "late_rebuilds": sum(
                total["rebuilds"] for total in totals.values()
            ),
            "outage_seconds": 0.0,
        }
        report.distributed = {
            "workers": self.workers,
            "partitions": len(ordered),
            "partition_events": [outcome.events for outcome in ordered],
            "shard_fingerprint": (
                self.manifest.fingerprint if self.manifest else None
            ),
        }
        return report

    def _replay_sharded(
        self,
        shard_dir: Path,
        manifest: ShardManifest,
        global_stream,
        start: float,
        halt_partition,
        halt_after,
        fail_partition,
    ) -> FleetReport:
        tracer = self._tracer
        with tracer.span(
            "coordinator",
            workers=self.workers,
            partitions=len(manifest.shards),
            engine=self.engine,
        ) as root:
            self.manifest = manifest
            payloads = self._payloads(
                shard_dir, manifest, dict(global_stream.end_hours),
                halt_partition, halt_after, fail_partition,
            )
            with tracer.span("coordinator.fanout"):
                outcomes = self._run_payloads(payloads)
                for outcome in outcomes:
                    if outcome is not None:
                        tracer.record(
                            "coordinator.partition",
                            wall_seconds=outcome.seconds,
                            index=outcome.index,
                            events=outcome.events,
                        )
                    if outcome is None or outcome.obs_payload is None:
                        continue
                    # Aggregate the worker's private telemetry: metrics
                    # fold into the coordinator registry under a
                    # worker="wN" label, its span tree grafts in as a
                    # child of the fanout span.
                    worker = f"w{outcome.index}"
                    with tracer.span("coordinator.worker", worker=worker):
                        tracer.graft(outcome.obs_payload.get("spans", ()))
                    if self.obs is not None:
                        self.obs.fold_payload(outcome.obs_payload, worker)
            with tracer.span("coordinator.merge"):
                report = self.merge(
                    outcomes, global_stream, time.perf_counter() - start
                )
            root.attributes.update(events=report.events)
        if self.obs is not None and not report.halted:
            # worker="merged" keeps the coordinator-level rollup apart
            # from the per-worker folds sharing the same families.
            self.obs.record_fleet_report(report, {"worker": "merged"})
        return report


def apply_policy(
    policy, alarm_managers: dict[str, AlarmManager], end_hours: dict
) -> None:
    """Feed merged incidents to the policy in canonical order.

    Distributed mitigation contract: incidents across all platforms are
    replayed into the :class:`~repro.fleetops.policy.PolicyEngine` in
    ``(opened_hour, platform, dimm_id)`` order, then the action queue
    drains to the fleet's global end.  Deterministic for a given merged
    result — apply the same pass to a single-process baseline's alarm
    managers to compare settled costs including actions.
    """
    if policy is None:
        return
    entries = []
    for platform in sorted(alarm_managers):
        for incident in alarm_managers[platform].incidents:
            entries.append(
                (incident.opened_hour, platform, incident.dimm_id,
                 platform, incident)
            )
    entries.sort(key=lambda entry: entry[:3])
    for _, _, _, platform, incident in entries:
        policy.on_incident(platform, incident)
    if end_hours:
        policy.advance(max(end_hours.values()))


# -- sharded sample build ---------------------------------------------------


def _build_partition(payload: dict) -> tuple:
    """Worker body: extract one shard's labeled samples."""
    manifest = ShardManifest.from_dict(payload["manifest"])
    columns = load_shard(
        payload["shard_dir"], manifest, payload["index"], mmap=payload["mmap"]
    )[payload["platform_key"]]
    fleet = columns.fleet_view()
    configs = [
        payload["configs"].get(dimm_id) for dimm_id in fleet.dimm_ids
    ]
    jitters = [
        payload["jitters"].get(dimm_id) for dimm_id in fleet.dimm_ids
    ]
    X, y, times, counts = _extract_fleet_shard(
        payload["pipeline"], fleet, configs, jitters, payload["end_hour"]
    )
    return (X, y, times, counts, list(fleet.dimm_ids))


def build_samples_distributed(
    pipeline,
    store,
    *,
    platform: str = "",
    workers: int = 2,
    n_shards: int | None = None,
    shard_dir=None,
    mmap: bool = True,
) -> SampleSet:
    """``FeaturePipeline.build_samples`` fanned out over shard files.

    The thinning jitters are drawn once from the *global* fleet (the rng
    sequence walks every DIMM in fleet order) and shipped per shard, so
    the concatenated sample set is bit-for-bit identical to the
    single-process build: shard DIMM ranges are contiguous slices of the
    sorted fleet order, and each shard's rows are already in global
    order within its slice.
    """
    if not pipeline._fitted:
        pipeline.fit(store)
    fleet = store.fleet_arrays()
    sampling = pipeline.config.sampling
    rng = np.random.default_rng(sampling.seed)
    jitters = thinning_jitters(
        np.diff(fleet.ce_offsets),
        sampling.max_samples_per_dimm,
        sampling.min_history_ces,
        rng,
    )
    jitter_of = dict(zip(fleet.dimm_ids, jitters))
    config_of = {
        dimm_id: store.config_for(dimm_id) for dimm_id in fleet.dimm_ids
    }
    platform_key = platform or "fleet"
    workers = max(1, int(workers))
    n_shards = int(n_shards) if n_shards else workers

    def _run(shard_dir: Path) -> SampleSet:
        manifest = write_fleet_shards(
            {platform_key: store.columns}, n_shards, shard_dir
        )
        payloads = [
            {
                "shard_dir": str(shard_dir),
                "manifest": manifest.to_dict(),
                "index": entry["index"],
                "platform_key": platform_key,
                "pipeline": pipeline,
                "configs": config_of,
                "jitters": jitter_of,
                "end_hour": store.end_hour,
                "mmap": mmap,
            }
            for entry in manifest.shards
        ]
        shards = _run_pool(_build_partition, payloads, workers)
        names = pipeline.feature_names()
        X = np.vstack([shard[0] for shard in shards])
        y = np.concatenate([shard[1] for shard in shards])
        times = np.concatenate([shard[2] for shard in shards])
        dimm_ids = np.concatenate(
            [
                np.repeat(np.asarray(shard[4], dtype=object), shard[3])
                for shard in shards
            ]
        )
        if X.shape[0] == 0:
            X = np.empty((0, len(names)))
        return SampleSet(
            X=X,
            y=y.astype(int),
            times=times,
            dimm_ids=dimm_ids,
            feature_names=names,
            feature_groups=pipeline.feature_groups(),
            platform=platform,
        )

    if shard_dir is not None:
        return _run(Path(shard_dir))
    with tempfile.TemporaryDirectory(prefix="repro-shards-") as tmp:
        return _run(Path(tmp))
