"""The ``distributed_replay`` scenario: sharded replay with a parity gate.

One run drives all three distributed layers and *measures the contract*:

1. serving assignments are fitted exactly as ``fleet_ops`` does (shared
   front half), and the fleet is replayed **single-process** through
   :class:`~repro.fleetops.engine.FleetReplayEngine` in coherent-flush
   mode with mitigation applied in canonical incident order — the
   distributed baseline;
2. the same fleet is replayed through the
   :class:`~repro.distributed.coordinator.ReplayCoordinator` with
   ``replay_workers`` worker processes over DIMM shards;
3. ``extras["distributed_replay"]["parity"]`` records the bit-for-bit
   comparison — canonical score logs, alarm summaries, settled per-
   platform and fleet cost digests, bus counts — plus both runs'
   throughput (the CI smoke job gates on ``parity["all"]``);
4. a slice of one platform's stream is then served through the
   :class:`~repro.distributed.service.AsyncScoringService` micro-batch
   front end, recording p50/p95/p99 latency, batch histogram, and
   shed / fallback counts.

Scenario parameters (``spec.params``, all optional): ``replay_workers``
(default 2), ``n_shards`` (default = workers), ``batch_size``,
``rescore_interval_hours``, ``engine``, plus ``serve`` — a dict with
``platform``, ``max_records`` (default 2000), ``max_batch``,
``max_wait_ms``, ``max_queue``, ``concurrency``.
"""

from __future__ import annotations

import itertools

from repro.distributed.coordinator import ReplayCoordinator, apply_policy
from repro.distributed.service import serve_stream
from repro.experiments.cache import ShardSetKey
from repro.experiments.registry import register_scenario
from repro.fleetops.cost import ActionCosts, CostModel, combine_summaries
from repro.fleetops.engine import _NULL_POLICY, FleetReplayEngine
from repro.fleetops.policy import (
    ActionBudget,
    MitigationPolicyConfig,
    PolicyEngine,
)
from repro.fleetops.scenario import (
    _fleet_cells_extras,
    build_serving_assignments,
    resolve_assignments,
)
from repro.fleetops.stream import merge_fleet_streams
from repro.mlops.feature_store import FeatureStore
from repro.mlops.model_registry import ModelRegistry
from repro.mlops.serving import AlarmSystem, OnlinePredictionService
from repro.obs.alerts import DEFAULT_SERVE_RULES, AlertEngine
from repro.streaming.bus import EventBus
from repro.streaming.scenario import DEFAULT_RESCORE_INTERVAL_HOURS
from repro.telemetry.log_store import iter_stream


def _canonical_logs(score_logs: dict) -> dict:
    return {
        platform: sorted(log, key=lambda row: (row[1], row[0]))
        for platform, log in score_logs.items()
    }


@register_scenario("distributed_replay")
def distributed_replay(ctx):
    """Sharded fleet replay, gated bit-for-bit against single-process."""
    params = ctx.spec.params or {}
    workers = int(params.get("replay_workers", 2))
    n_shards = params.get("n_shards")
    batch_size = int(params.get("batch_size", 256))
    rescore = float(
        params.get("rescore_interval_hours", DEFAULT_RESCORE_INTERVAL_HOURS)
    )
    replay_engine = str(params.get("engine", "batched"))
    serve_params = dict(params.get("serve") or {})
    heartbeat_every = int(params.get("heartbeat_every", 0) or 0)
    if ctx.obs is not None and ctx.obs.alerts is None:
        # Serving SLO rules fire on the serve-slice heartbeats below;
        # the engine publishes obs.alert on its own bus, so replay
        # bus_counts (and the parity gate) never see alert traffic.
        ctx.obs.alerts = AlertEngine(DEFAULT_SERVE_RULES)

    assignments_spec = resolve_assignments(ctx.spec)
    cost_model = CostModel(ActionCosts.from_params(params.get("costs")))

    def make_policy() -> PolicyEngine:
        return PolicyEngine(
            policy=MitigationPolicyConfig.from_params(params.get("policy")),
            budget=ActionBudget.from_params(params.get("budget")),
            seed=ctx.protocol.seed,
        )

    stores, assignments, cells, unsupported = build_serving_assignments(
        ctx, assignments_spec
    )
    if not assignments:
        raise ValueError(
            "distributed_replay: no supported (platform, model) assignment"
        )

    # -- single-process baseline (the distributed contract's reference) ----
    baseline = FleetReplayEngine(
        assignments,
        labeling=ctx.protocol.labeling,
        policy=None,
        cost_model=cost_model,
        bus=EventBus(),
        rescore_interval_hours=rescore,
        batch_size=batch_size,
        engine=replay_engine,
        collect_scores=True,
        coherent_flush=True,
    )
    stream = merge_fleet_streams(
        stores, decode_payloads=(replay_engine == "per_event")
    )
    baseline_report = baseline.replay(stream, stores)
    baseline_policy = make_policy()
    baseline_alarms = {
        platform: runtime.alarms
        for platform, runtime in baseline.runtimes.items()
    }
    apply_policy(baseline_policy, baseline_alarms, stream.end_hours)
    baseline_costs = {}
    summaries = []
    for platform, alarms in baseline_alarms.items():
        summary, _ = cost_model.settle(
            platform,
            alarms,
            baseline_policy if baseline_policy is not None else _NULL_POLICY,
            float(assignments[platform].live_from_hour),
        )
        baseline_costs[platform] = summary.to_dict()
        summaries.append(summary)
    baseline_fleet_cost = combine_summaries(summaries).to_dict()

    # -- distributed run ---------------------------------------------------
    coordinator = ReplayCoordinator(
        assignments,
        ctx.protocol.labeling,
        policy=make_policy(),
        cost_model=cost_model,
        bus=EventBus(),
        workers=workers,
        n_shards=int(n_shards) if n_shards else None,
        rescore_interval_hours=rescore,
        batch_size=batch_size,
        engine=replay_engine,
        obs=ctx.obs,
        heartbeat_every=heartbeat_every,
    )
    shards = None
    if ctx.cache.root is not None:
        # Disk-cached runs reuse shard sets across invocations: the key
        # carries the shard format version, so a layout bump rebuilds.
        shards = ctx.cache.shard_set(
            ShardSetKey(
                simulations=tuple(
                    ctx.simulation_key(platform)
                    for platform in sorted(stores)
                ),
                n_shards=coordinator.n_shards,
            ),
            lambda: {p: s.columns for p, s in stores.items()},
        )
    report = coordinator.replay(stores, shards=shards)

    # -- the parity gate ---------------------------------------------------
    baseline_logs = _canonical_logs(baseline.score_logs)
    parity = {
        "score_logs": all(
            baseline_logs[platform] == coordinator.score_logs[platform]
            for platform in stores
        ),
        "alarm_summaries": all(
            baseline_alarms[platform].summary(
                float(assignments[platform].live_from_hour)
            )
            == coordinator.alarm_managers[platform].summary(
                float(assignments[platform].live_from_hour)
            )
            for platform in stores
        ),
        "costs": all(
            baseline_costs[platform] == report.costs[platform]
            for platform in stores
        ),
        "fleet_cost": baseline_fleet_cost == report.fleet_cost,
        "bus_counts": baseline_report.bus_counts == report.bus_counts,
    }
    parity["all"] = all(parity.values())

    # -- async batched serving over one platform's stream ------------------
    serve_platform = serve_params.get("platform") or next(iter(stores))
    serving_slo = _serve_slice(
        stores[serve_platform], assignments[serve_platform], serve_params,
        obs=ctx.obs, heartbeat_every=heartbeat_every,
    )

    cells, base_extras = _fleet_cells_extras(
        report, coordinator.cost_summaries, assignments, assignments_spec,
        cells, unsupported,
    )
    extras = {
        "distributed_replay": {
            "report": base_extras["fleet_ops"]["report"],
            "parity": parity,
            "workers": workers,
            "baseline": {
                "seconds": round(baseline_report.seconds, 4),
                "events_per_second": round(
                    baseline_report.events_per_second, 1
                ),
            },
            "serving": {"platform": serve_platform, **serving_slo},
            "assignments": base_extras["fleet_ops"]["assignments"],
            "unsupported": unsupported,
        }
    }
    return cells, extras


def _serve_slice(
    store, assignment, serve_params: dict, obs=None, heartbeat_every=0
) -> dict:
    """Micro-batch a slice of one platform's stream; return SLO counters."""
    max_records = int(serve_params.get("max_records", 2000))
    feature_store = FeatureStore(assignment.pipeline)
    registry = ModelRegistry()
    version = registry.register(
        assignment.platform,
        assignment.model_name,
        assignment.model,
        float(assignment.threshold),
        {},
    )
    registry.promote_to_staging(version)
    registry.promote_to_production(version)
    service = OnlinePredictionService(
        feature_store,
        registry,
        AlarmSystem(),
        assignment.platform,
    )
    for dimm_id, config in store.configs.items():
        service.register_config(dimm_id, config)
    records = list(itertools.islice(iter_stream(store), max_records))
    alarms, slo = serve_stream(
        service,
        records,
        max_batch=int(serve_params.get("max_batch", 64)),
        max_wait_ms=float(serve_params.get("max_wait_ms", 2.0)),
        max_queue=int(serve_params.get("max_queue", 256)),
        concurrency=int(serve_params.get("concurrency", 32)),
        obs=obs,
        heartbeat_every=int(
            serve_params.get("heartbeat_every", heartbeat_every) or 0
        ),
    )
    slo["alarms"] = len(alarms)
    slo["records"] = len(records)
    return slo


def render_distributed_extras(extras: dict) -> str:
    """Human-readable summary of the scenario's ``extras`` payload."""
    payload = extras.get("distributed_replay")
    if not payload:
        return ""
    report = payload["report"]
    parity = payload["parity"]
    gates = " ".join(
        f"{name}={'OK' if ok else 'FAIL'}"
        for name, ok in parity.items()
        if name != "all"
    )
    lines = [
        "DISTRIBUTED REPLAY",
        f"  parity: {'OK' if parity['all'] else 'FAIL'} ({gates})",
        f"  {payload['workers']} workers: {report['events']} events in "
        f"{report['seconds']:.2f}s ({report['events_per_second']:.0f} ev/s) "
        f"vs single-process {payload['baseline']['seconds']:.2f}s "
        f"({payload['baseline']['events_per_second']:.0f} ev/s)",
    ]
    distributed = report.get("distributed") or {}
    if distributed:
        lines.append(
            f"  partitions: {distributed['partitions']} "
            f"(events {distributed['partition_events']}, "
            f"shards {distributed['shard_fingerprint']})"
        )
    serving = payload.get("serving") or {}
    if serving:
        lines.append(
            f"  async serving[{serving['platform']}]: "
            f"{serving['records']} records, {serving['scored']} scored in "
            f"{serving['batches']} batches (mean {serving['mean_batch']:.1f}"
            f"/batch), p50/p95/p99 = {serving['p50_ms']:.2f}/"
            f"{serving['p95_ms']:.2f}/{serving['p99_ms']:.2f} ms, "
            f"shed={serving['shed']} fallbacks={serving['fallbacks']} "
            f"lost={serving['lost']}"
        )
    return "\n".join(lines)
