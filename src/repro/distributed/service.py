"""Async batched scoring front end over the online serving path.

:class:`AsyncScoringService` wraps one
:class:`~repro.mlops.serving.OnlinePredictionService` with an asyncio
micro-batching loop: callers ``await submit(record)`` and get back the
same answer :meth:`OnlinePredictionService.observe` would have produced,
but model calls are coalesced — requests that arrive within
``max_wait_ms`` of each other (up to ``max_batch``) share ONE
``predict_proba`` call.  The split rides the serving path's
``ingest`` / ``complete`` halves, so state updates, gating, degraded
serving and alarm accounting stay on the single-threaded event loop and
remain bit-identical to the synchronous path.

Backpressure is explicit and lossless: the batch queue is bounded at
``max_queue``; when it is full the request is **shed** to the
model-free degradation ladder (stale score, then the risky-CE
heuristic) and still answered — no request is ever dropped.  SLO
counters record p50/p95/p99 latency, throughput, a batch-size
histogram, and shed / fallback counts.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

import numpy as np

from repro.mlops.serving import Alarm, OnlinePredictionService, PreparedRequest
from repro.obs.metrics import percentile
from repro.telemetry.records import CERecord

_STOP = object()


@dataclass
class ServiceStats:
    """SLO counters for one :class:`AsyncScoringService` run."""

    submitted: int = 0
    answered: int = 0
    scored: int = 0  # requests answered via a model batch
    skipped: int = 0  # gated out by the serving path (no score needed)
    shed: int = 0  # queue-full -> degraded answer
    fallbacks: int = 0  # degraded answers (shed + ingest/predict failures)
    batches: int = 0
    latencies: list = field(default_factory=list)  # seconds, scored only
    batch_sizes: list = field(default_factory=list)
    wall_seconds: float = 0.0

    def summary(self) -> dict:
        # Deterministic nearest-rank percentiles, well-defined on every
        # sample count: 0 completed requests -> 0.0, 1 -> that latency
        # (np.percentile would interpolate and IndexError/NaN on empty).
        latencies_ms = [lat * 1e3 for lat in self.latencies]
        percentiles = {
            "p50_ms": percentile(latencies_ms, 50),
            "p95_ms": percentile(latencies_ms, 95),
            "p99_ms": percentile(latencies_ms, 99),
        }
        histogram: dict[int, int] = {}
        for size in self.batch_sizes:
            histogram[size] = histogram.get(size, 0) + 1
        return {
            "submitted": self.submitted,
            "answered": self.answered,
            "scored": self.scored,
            "skipped": self.skipped,
            "shed": self.shed,
            "fallbacks": self.fallbacks,
            "batches": self.batches,
            "lost": self.submitted - self.answered,
            "mean_batch": (
                float(np.mean(self.batch_sizes)) if self.batch_sizes else 0.0
            ),
            "batch_histogram": {
                str(size): count for size, count in sorted(histogram.items())
            },
            "throughput_rps": (
                self.answered / self.wall_seconds
                if self.wall_seconds > 0
                else 0.0
            ),
            **percentiles,
        }


class AsyncScoringService:
    """Micro-batching asyncio front end; start inside a running loop."""

    def __init__(
        self,
        service: OnlinePredictionService,
        *,
        max_batch: int = 64,
        max_wait_ms: float = 2.0,
        max_queue: int = 256,
        obs=None,
        heartbeat_every: int = 0,
    ):
        self.service = service
        self.max_batch = max(1, int(max_batch))
        self.max_wait_s = max(0.0, float(max_wait_ms)) / 1e3
        self.max_queue = max(1, int(max_queue))
        self.stats = ServiceStats()
        #: Publish a live ``serve`` heartbeat every N submissions
        #: (0 = off).  Request-count based, so the heartbeat *schedule*
        #: is deterministic; heartbeats are write-only and never feed
        #: back into batching or shedding decisions.
        self.heartbeat_every = int(heartbeat_every)
        #: Optional :class:`repro.obs.Observability` bundle.  The batch
        #: lifecycle gets ONE span at :meth:`stop` (batch boundaries are
        #: timing-dependent, so per-batch spans would not be
        #: deterministic); SLO counters land in the registry then too.
        self.obs = obs
        self._queue: asyncio.Queue | None = None
        self._task: asyncio.Task | None = None
        self._started = 0.0

    async def start(self) -> None:
        self._queue = asyncio.Queue(maxsize=self.max_queue)
        self._task = asyncio.get_running_loop().create_task(
            self._batch_loop()
        )
        self._started = time.perf_counter()

    async def stop(self) -> None:
        """Flush the queue, score everything pending, stop the batcher."""
        if self._queue is None:
            return
        await self._queue.put(_STOP)
        await self._task
        self.stats.wall_seconds = time.perf_counter() - self._started
        self._queue = None
        self._task = None
        if self.obs is not None:
            self.obs.tracer.record(
                "serve.batch_loop",
                wall_seconds=self.stats.wall_seconds,
                submitted=self.stats.submitted,
                answered=self.stats.answered,
                batches=self.stats.batches,
            )
            self.obs.record_service_stats(self.stats)

    async def submit(self, record) -> Alarm | None:
        """Feed one telemetry record; same answer as ``observe(record)``.

        Non-CE records (events, UEs) update state synchronously.  CEs
        that pass the serving gates join the current micro-batch; when
        the queue is full the request is shed to the degradation ladder
        and still answered immediately.
        """
        self.stats.submitted += 1
        if (
            self.obs is not None
            and self.heartbeat_every
            and self.stats.submitted % self.heartbeat_every == 0
        ):
            stats = self.stats
            self.obs.heartbeat(
                "serve",
                {
                    "submitted": stats.submitted,
                    "answered": stats.answered,
                    "scored": stats.scored,
                    "shed": stats.shed,
                    "fallbacks": stats.fallbacks,
                    "batches": stats.batches,
                    "queue_depth": (
                        self._queue.qsize() if self._queue is not None else 0
                    ),
                    "p99_ms": percentile(
                        [lat * 1e3 for lat in stats.latencies], 99
                    ),
                },
            )
        if not isinstance(record, CERecord):
            answer = self.service.observe(record)
            self.stats.answered += 1
            return answer
        t0 = time.perf_counter()
        prepared = self.service.ingest(record)
        if prepared is None:
            self.stats.skipped += 1
            self.stats.answered += 1
            return None
        if prepared.fallback_score is not None:
            # Feature extraction already degraded in ingest; the answer
            # needs no model call, so it skips the queue entirely.
            self.stats.fallbacks += 1
            self.stats.answered += 1
            return self.service.complete(prepared, prepared.fallback_score)
        try:
            future = asyncio.get_running_loop().create_future()
            self._queue.put_nowait((prepared, future, t0))
        except asyncio.QueueFull:
            # Backpressure: shed to the model-free ladder, still answer.
            self.stats.shed += 1
            self.stats.fallbacks += 1
            self.stats.answered += 1
            prepared.fallback_score = self.service._degraded_score(
                prepared.state, record.timestamp_hours
            )
            return self.service.complete(prepared, prepared.fallback_score)
        alarm = await future
        self.stats.answered += 1
        return alarm

    async def _batch_loop(self) -> None:
        queue = self._queue
        stopping = False
        while not stopping:
            item = await queue.get()
            if item is _STOP:
                break
            batch = [item]
            deadline = asyncio.get_running_loop().time() + self.max_wait_s
            while len(batch) < self.max_batch:
                timeout = deadline - asyncio.get_running_loop().time()
                if timeout <= 0:
                    break
                try:
                    nxt = await asyncio.wait_for(queue.get(), timeout)
                except asyncio.TimeoutError:
                    break
                if nxt is _STOP:
                    stopping = True
                    break
                batch.append(nxt)
            self._score_batch(batch)
        # Drain whatever raced in after the stop sentinel.
        tail = []
        while True:
            try:
                item = queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if item is not _STOP:
                tail.append(item)
        for lo in range(0, len(tail), self.max_batch):
            self._score_batch(tail[lo : lo + self.max_batch])

    def _score_batch(self, batch: list) -> None:
        """One coalesced model call; completes every request's future."""
        self.stats.batches += 1
        self.stats.batch_sizes.append(len(batch))
        # Group by production model: a registry promotion mid-stream may
        # split one micro-batch across model versions.
        groups: dict[int, list] = {}
        for entry in batch:
            groups.setdefault(id(entry[0].production), []).append(entry)
        now = time.perf_counter()
        for entries in groups.values():
            production = entries[0][0].production
            matrix = np.vstack(
                [prepared.features for prepared, _, _ in entries]
            )
            try:
                scores = np.asarray(
                    production.model.predict_proba(matrix), dtype=float
                )
            except Exception:
                self.service.extract_errors += len(entries)
                scores = None
            for position, (prepared, future, t0) in enumerate(entries):
                if scores is None:
                    self.stats.fallbacks += 1
                    score = prepared.fallback_score = (
                        self.service._degraded_score(
                            prepared.state, prepared.ce.timestamp_hours
                        )
                    )
                else:
                    self.stats.scored += 1
                    score = float(scores[position])
                alarm = self.service.complete(prepared, score)
                self.stats.latencies.append(now - t0)
                if not future.done():
                    future.set_result(alarm)


async def run_load(
    async_service: AsyncScoringService,
    records,
    *,
    concurrency: int = 32,
) -> list[Alarm]:
    """Drive a record stream through the service; returns fired alarms.

    ``concurrency`` submissions are kept in flight at once (a semaphore,
    not a thread pool — everything stays on the event loop), which is
    what lets the batcher coalesce: a serial await-each-record loop
    would produce single-row batches.
    """
    gate = asyncio.Semaphore(max(1, int(concurrency)))
    alarms: list[Alarm] = []

    async def one(record):
        async with gate:
            alarm = await async_service.submit(record)
            if alarm is not None:
                alarms.append(alarm)

    await async_service.start()
    try:
        await asyncio.gather(*(one(record) for record in records))
    finally:
        await async_service.stop()
    return alarms


def serve_stream(
    service: OnlinePredictionService,
    records,
    *,
    max_batch: int = 64,
    max_wait_ms: float = 2.0,
    max_queue: int = 256,
    concurrency: int = 32,
    obs=None,
    heartbeat_every: int = 0,
) -> tuple[list[Alarm], dict]:
    """Synchronous wrapper: batch-serve ``records``, return alarms + SLOs."""
    async_service = AsyncScoringService(
        service,
        max_batch=max_batch,
        max_wait_ms=max_wait_ms,
        max_queue=max_queue,
        obs=obs,
        heartbeat_every=heartbeat_every,
    )
    alarms = asyncio.run(
        run_load(async_service, records, concurrency=concurrency)
    )
    return alarms, async_service.stats.summary()
