"""DIMM-partitioned ``.npz`` shard format for the distributed tier.

A *shard set* splits one fleet's telemetry — every platform's
:class:`~repro.telemetry.columnar.TelemetryColumns` — into ``n_shards``
disjoint DIMM partitions, each serialized to one uncompressed ``.npz``
file plus a JSON manifest describing the whole set:

* partitioning is **by DIMM, not by time**: every replay decision
  (min-CE gating, rescore throttling, alarm suppression, incident
  lifecycle) is independent per DIMM, so a shard replays bit-for-bit
  the scores and incidents those DIMMs would produce in the full run;
* partitions are contiguous ranges over each platform's *sorted* DIMM
  ids, balanced by per-DIMM event count — deterministic for a given
  store, and describable in the manifest as ``[lo, hi)`` ranges;
* row order within a shard preserves the source table's append order,
  so the stable merged-stream lexsort keeps every per-DIMM tie order
  and the shard walk equals the full walk restricted to those DIMMs;
* shard files are ZIP_STORED, so workers open them zero-copy via
  :func:`~repro.telemetry.npz_io.load_npz_arrays` memory maps;
* the manifest carries ``SHARD_FORMAT_VERSION`` and a content
  fingerprint per shard — the artifact cache keys on both, so a format
  bump or changed telemetry rebuilds instead of silently loading.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.telemetry.columnar import (
    CE_DIMM,
    EV_DIMM,
    UE_DIMM,
    TelemetryColumns,
)
from repro.telemetry.npz_io import load_npz_arrays

#: Bump when the on-disk shard layout changes; stale sets rebuild.
SHARD_FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"

#: (table attribute, dimm-code column) for each record kind.
_KIND_COLUMNS = (("ces", CE_DIMM), ("ues", UE_DIMM), ("events", EV_DIMM))


@dataclass(frozen=True)
class ShardManifest:
    """Parsed ``manifest.json`` of one shard set."""

    format: int
    n_shards: int
    platforms: tuple[str, ...]
    fingerprint: str
    shards: tuple[dict, ...] = field(default_factory=tuple)

    def to_dict(self) -> dict:
        return {
            "format": self.format,
            "n_shards": self.n_shards,
            "platforms": list(self.platforms),
            "fingerprint": self.fingerprint,
            "shards": [dict(entry) for entry in self.shards],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ShardManifest":
        return cls(
            format=int(payload["format"]),
            n_shards=int(payload["n_shards"]),
            platforms=tuple(payload["platforms"]),
            fingerprint=str(payload["fingerprint"]),
            shards=tuple(payload["shards"]),
        )

    @classmethod
    def load(cls, shard_dir) -> "ShardManifest":
        path = Path(shard_dir) / MANIFEST_NAME
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        if int(payload.get("format", -1)) != SHARD_FORMAT_VERSION:
            raise StaleShardFormatError(
                f"shard set at {shard_dir} has format "
                f"{payload.get('format')!r}, expected {SHARD_FORMAT_VERSION}"
            )
        return cls.from_dict(payload)


class StaleShardFormatError(RuntimeError):
    """A shard set on disk was written by a different format version."""


def _dimm_event_counts(columns: TelemetryColumns) -> np.ndarray:
    """Total rows (CE + UE + event) touching each vocabulary DIMM code."""
    n = len(columns.dimms)
    counts = np.zeros(n, dtype=np.int64)
    if n == 0:
        return counts
    for attr, dimm_col in _KIND_COLUMNS:
        rows = getattr(columns, attr).rows()
        if rows.size:
            codes = rows[:, dimm_col].astype(np.int64)
            codes = codes[(codes >= 0) & (codes < n)]
            counts += np.bincount(codes, minlength=n)
    return counts


def partition_fleet(
    columns: TelemetryColumns, n_shards: int
) -> list[tuple[int, int]]:
    """Deterministic ``[lo, hi)`` ranges over the *sorted* DIMM ids.

    Ranges are contiguous in sorted-name order and balanced by per-DIMM
    event count (a DIMM's CE + UE + event rows all land in its range).
    When the platform has fewer DIMMs than shards, trailing ranges are
    empty; a range is never split mid-DIMM.
    """
    n_shards = max(1, int(n_shards))
    names = sorted(columns.dimms.names())
    n = len(names)
    if n == 0:
        return [(0, 0)] * n_shards
    counts = _dimm_event_counts(columns)
    rank = np.empty(n, dtype=np.int64)
    for position, name in enumerate(names):
        rank[position] = columns.dimms.intern(name)
    cum = np.cumsum(counts[rank])
    total = int(cum[-1])
    edges = [0]
    for k in range(1, n_shards):
        if total:
            edge = int(np.searchsorted(cum, total * k / n_shards, "left"))
        else:
            edge = (n * k) // n_shards
        # Keep edges monotone; give every leading shard at least one
        # DIMM while there are DIMMs left.
        edges.append(min(max(edge, min(edges[-1] + 1, n)), n))
    edges.append(n)
    return [(edges[k], edges[k + 1]) for k in range(n_shards)]


def shard_columns(
    columns: TelemetryColumns, keep_names: list[str]
) -> TelemetryColumns:
    """The sub-store of ``keep_names``' rows, dimm codes remapped.

    Row order within each table is the source append order, so the
    shard's stable merged-stream sort preserves every per-DIMM tie
    order.  The shard gets a fresh DIMM vocabulary (``keep_names`` in
    the given order); the server vocabulary is carried whole so server
    codes stay valid without remapping.
    """
    n = len(columns.dimms)
    keep = np.zeros(n, dtype=bool)
    remap = np.full(n, -1, dtype=np.int64)
    for position, name in enumerate(keep_names):
        code = columns.dimms.intern(name)
        keep[code] = True
        remap[code] = position
    tables = {}
    for attr, dimm_col in _KIND_COLUMNS:
        rows = getattr(columns, attr).rows()
        if rows.size and n:
            codes = rows[:, dimm_col].astype(np.int64)
            valid = (codes >= 0) & (codes < n)
            mask = np.zeros(codes.size, dtype=bool)
            mask[valid] = keep[codes[valid]]
            block = np.ascontiguousarray(rows[mask])
            block[:, dimm_col] = remap[codes[mask]]
        else:
            block = rows[:0].copy()
        tables[attr] = block
    return TelemetryColumns.from_arrays(
        tables["ces"],
        tables["ues"],
        tables["events"],
        list(keep_names),
        columns.servers.names(),
    )


def _table_digest(hasher, rows: np.ndarray) -> None:
    hasher.update(np.int64(rows.shape[0]).tobytes())
    hasher.update(np.ascontiguousarray(rows, dtype=np.float64).tobytes())


def shard_fingerprint(columns_by: dict[str, TelemetryColumns]) -> str:
    """Content hash of one shard's tables + vocabularies (hex, 16 chars)."""
    hasher = hashlib.sha256()
    for platform in sorted(columns_by):
        columns = columns_by[platform]
        hasher.update(platform.encode())
        for attr, _ in _KIND_COLUMNS:
            _table_digest(hasher, getattr(columns, attr).rows())
        hasher.update("\x00".join(columns.dimms.names()).encode())
        hasher.update("\x00".join(columns.servers.names()).encode())
    return hasher.hexdigest()[:16]


def write_fleet_shards(
    stores: dict[str, TelemetryColumns],
    n_shards: int,
    out_dir,
) -> ShardManifest:
    """Partition every platform's store into ``n_shards`` shard files.

    Shard ``k`` holds partition ``k`` of every platform (platforms with
    fewer DIMMs than shards contribute nothing to trailing shards).
    Writes ``shard_NNNN.npz`` files plus ``manifest.json`` into
    ``out_dir`` and returns the parsed manifest.
    """
    n_shards = max(1, int(n_shards))
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    platforms = sorted(stores)
    ranges = {}
    names_by = {}
    for platform in platforms:
        columns = stores[platform]
        names_by[platform] = sorted(columns.dimms.names())
        ranges[platform] = partition_fleet(columns, n_shards)
    entries = []
    shard_digests = []
    for index in range(n_shards):
        path = out_dir / f"shard_{index:04d}.npz"
        arrays = {}
        shard_columns_by = {}
        entry_platforms = {}
        rows_total = 0
        for platform in platforms:
            lo, hi = ranges[platform][index]
            keep = names_by[platform][lo:hi]
            part = shard_columns(stores[platform], keep)
            shard_columns_by[platform] = part
            rows = len(part.ces) + len(part.ues) + len(part.events)
            rows_total += rows
            entry_platforms[platform] = {
                "dimm_lo": lo,
                "dimm_hi": hi,
                "dimms": hi - lo,
                "ces": len(part.ces),
                "ues": len(part.ues),
                "events": len(part.events),
            }
            for name, array in part.to_arrays().items():
                arrays[f"{platform}::{name}"] = array
        fingerprint = shard_fingerprint(shard_columns_by)
        shard_digests.append(fingerprint)
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        entries.append(
            {
                "index": index,
                "path": path.name,
                "rows": rows_total,
                "platforms": entry_platforms,
                "fingerprint": fingerprint,
            }
        )
    manifest = ShardManifest(
        format=SHARD_FORMAT_VERSION,
        n_shards=n_shards,
        platforms=tuple(platforms),
        fingerprint=hashlib.sha256(
            "\x00".join(shard_digests).encode()
        ).hexdigest()[:16],
        shards=tuple(entries),
    )
    with open(out_dir / MANIFEST_NAME, "w", encoding="utf-8") as handle:
        json.dump(manifest.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return manifest


def load_shard(
    shard_dir,
    manifest: ShardManifest,
    index: int,
    *,
    mmap: bool = True,
    verify: bool = False,
) -> dict[str, TelemetryColumns]:
    """One shard's per-platform stores, memory-mapped by default."""
    entry = manifest.shards[index]
    arrays = load_npz_arrays(Path(shard_dir) / entry["path"], mmap=mmap)
    columns_by = {}
    for platform in manifest.platforms:
        columns_by[platform] = TelemetryColumns.from_arrays(
            arrays[f"{platform}::ces"],
            arrays[f"{platform}::ues"],
            arrays[f"{platform}::events"],
            arrays[f"{platform}::dimm_names"],
            arrays[f"{platform}::server_names"],
        )
    if verify:
        fingerprint = shard_fingerprint(columns_by)
        if fingerprint != entry["fingerprint"]:
            raise StaleShardFormatError(
                f"shard {index} content fingerprint {fingerprint} does not "
                f"match manifest {entry['fingerprint']}"
            )
    return columns_by
