"""Distributed scoring tier: shard format, replay coordinator, serving.

Layers (each importable on its own):

* :mod:`repro.distributed.shards` — deterministic DIMM-partitioned
  ``.npz`` shard format with a JSON manifest and zero-copy loads;
* :mod:`repro.distributed.coordinator` — fans fleet-replay partitions
  out to worker processes over shard files and merges score / alarm /
  cost streams back bit-for-bit;
* :mod:`repro.distributed.service` — asyncio micro-batching front end
  over :class:`~repro.mlops.serving.OnlinePredictionService` with SLO
  counters and shed-on-overflow backpressure;
* :mod:`repro.distributed.scenario` — the ``distributed_replay``
  scenario gating distributed-vs-single-process parity.
"""

from repro.distributed.shards import (
    SHARD_FORMAT_VERSION,
    ShardManifest,
    load_shard,
    partition_fleet,
    write_fleet_shards,
)

__all__ = [
    "SHARD_FORMAT_VERSION",
    "ShardManifest",
    "load_shard",
    "partition_fleet",
    "write_fleet_shards",
]
