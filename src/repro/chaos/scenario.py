"""The ``chaos_replay`` scenario: replay quality under telemetry faults.

For every (platform, model) pair the scenario

1. fits the serving pipeline and trains the model exactly like
   ``streaming_replay`` (the clean, fault-free reference point),
2. sweeps a fault-rate curve: at each rate the
   :class:`~repro.chaos.faults.TelemetryFaultInjector` perturbs the
   campaign's telemetry (drops, duplicates, bounded delays, field
   corruption, per-server collector outages) and the corrupted stream is
   replayed through a fresh :class:`~repro.streaming.replay.ReplayEngine`
   — corrupt records land on the bus dead-letter topic instead of
   crashing the walk, and
3. reports, per point, alarm-level precision/recall, the degradation
   health counters, the dead-letter count, and the settled
   :class:`~repro.fleetops.cost.CostModel` economics — the cost
   degradation curve vs the clean baseline.

Rate 0.0 skips injection entirely, so the curve's first point is
bit-identical to a plain ``streaming_replay`` run of the same spec (the
clean-run parity guarantee the CI chaos smoke job gates on).

Scenario parameters (``spec.params``): ``fault_rates`` (default
``(0.0, 0.02, 0.05)``), ``engine`` (``batched`` | ``per_event``),
``batch_size``, ``rescore_interval_hours``, ``max_delay_hours`` (delay
spec bound, default 6), ``outage_hours`` (outage window length, default
24), and ``chaos_seed`` (injector RNG seed, default the protocol seed).
"""

from __future__ import annotations

from repro.chaos.faults import (
    CorruptSpec,
    DelaySpec,
    DropSpec,
    DuplicateSpec,
    InjectionReport,
    OutageSpec,
    TelemetryFaultInjector,
)
from repro.chaos.quarantine import DEAD_LETTER_TOPIC
from repro.evaluation.experiment import MODEL_BUILDERS, ModelResult
from repro.experiments.registry import register_scenario
from repro.experiments.results import Cell
from repro.features.pipeline import FeaturePipeline, FeaturePipelineConfig
from repro.fleetops.cost import CostModel
from repro.fleetops.engine import _NULL_POLICY
from repro.ml.virr import virr
from repro.obs.alerts import DEFAULT_REPLAY_RULES, AlertEngine
from repro.streaming.bus import EventBus
from repro.streaming.replay import REPLAY_ENGINES, ReplayEngine
from repro.streaming.scenario import (
    DEFAULT_RESCORE_INTERVAL_HOURS,
    serving_threshold,
)

#: Default fault-rate sweep (the CI smoke job runs exactly these).
DEFAULT_FAULT_RATES = (0.0, 0.02, 0.05)


def fault_specs(
    rate: float, max_delay_hours: float, outage_hours: float
) -> tuple:
    """The sweep's composed fault mix at one rate.

    Drops, delays and corruption run at ``rate``; duplicates at half of it
    (duplication is rarer than loss in real collectors); outages hit each
    server with probability ``rate`` for one ``outage_hours`` window.
    """
    return (
        DropSpec(rate=rate),
        DuplicateSpec(rate=rate / 2.0),
        DelaySpec(rate=rate, max_delay_hours=max_delay_hours),
        CorruptSpec(rate=rate),
        OutageSpec(rate=rate, duration_hours=outage_hours),
    )


@register_scenario("chaos_replay")
def chaos_replay(ctx):
    """Sweep fault rates; report alarm quality + cost degradation curves."""
    params = ctx.spec.params or {}
    fault_rates = tuple(
        float(rate) for rate in params.get("fault_rates", DEFAULT_FAULT_RATES)
    )
    if not fault_rates:
        raise ValueError("chaos_replay needs at least one fault rate")
    batch_size = int(params.get("batch_size", 256))
    rescore = float(
        params.get("rescore_interval_hours", DEFAULT_RESCORE_INTERVAL_HOURS)
    )
    max_delay_hours = float(params.get("max_delay_hours", 6.0))
    outage_hours = float(params.get("outage_hours", 24.0))
    chaos_seed = int(params.get("chaos_seed", ctx.protocol.seed))
    replay_engine = str(params.get("engine", "batched"))
    heartbeat_every = int(params.get("heartbeat_every", 0) or 0)
    if replay_engine not in REPLAY_ENGINES:
        raise ValueError(
            f"unknown replay engine {replay_engine!r}; "
            f"valid: {list(REPLAY_ENGINES)}"
        )
    if ctx.obs is not None and ctx.obs.alerts is None:
        # SLO rules ride the replay heartbeats; the engine's private bus
        # keeps obs.alert traffic out of the replay bus_counts, so the
        # clean-point parity guarantee is untouched.
        ctx.obs.alerts = AlertEngine(DEFAULT_REPLAY_RULES)

    cells: list[Cell] = []
    extras: dict = {"chaos_replay": {}}
    for platform in ctx.spec.platforms:
        simulation = ctx.simulation(platform)
        experiment = ctx.experiment(platform)
        hours = ctx.effective_hours(platform)
        split_hour = ctx.protocol.sampling.train_fraction * hours
        pipeline = FeaturePipeline(
            FeaturePipelineConfig(
                labeling=ctx.protocol.labeling, sampling=ctx.protocol.sampling
            )
        )
        pipeline.fit(simulation.store)
        platform_extras = extras["chaos_replay"].setdefault(platform, {})
        for model_name in ctx.spec.models:
            builder = MODEL_BUILDERS[model_name]
            model = builder(experiment.samples.feature_names, ctx.protocol.seed)
            offline = experiment.run_model(model_name, model=model)
            if not offline.supported:
                cells.append(Cell(platform, platform, model_name, offline))
                continue
            threshold = serving_threshold(
                model, experiment.train, experiment.validation
            )
            curve: list[dict] = []
            for rate in fault_rates:
                if rate > 0.0:
                    injector = TelemetryFaultInjector(
                        fault_specs(rate, max_delay_hours, outage_hours),
                        seed=chaos_seed,
                    )
                    store, injection = injector.inject(simulation.store)
                else:
                    # The clean point replays the original store object, so
                    # it is bit-identical to streaming_replay by
                    # construction (quarantine passes it through untouched).
                    store, injection = simulation.store, InjectionReport(
                        seed=chaos_seed
                    )
                engine = ReplayEngine(
                    pipeline,
                    model,
                    threshold,
                    platform,
                    configs=store.configs,
                    labeling=ctx.protocol.labeling,
                    bus=EventBus(),
                    live_from_hour=split_hour,
                    rescore_interval_hours=rescore,
                    batch_size=batch_size,
                    engine=replay_engine,
                    obs=ctx.obs,
                    obs_labels={"fault_rate": f"{rate:g}"},
                    heartbeat_every=heartbeat_every,
                )
                report = engine.replay(store, model_name=model_name)
                cost, _ = CostModel().settle(
                    platform, engine.alarms, _NULL_POLICY, split_hour
                )
                health = dict(report.health)
                health["outage_seconds"] = injection.outage_seconds
                curve.append(
                    {
                        "fault_rate": rate,
                        "alarms": report.alarms,
                        "health": health,
                        "dead_letter": report.bus_counts.get(
                            DEAD_LETTER_TOPIC, 0
                        ),
                        "cost": cost.to_dict(),
                        "injection": injection.to_dict(),
                        "report": report.to_dict(),
                    }
                )
            clean = min(curve, key=lambda point: point["fault_rate"])
            summary = clean["alarms"]
            precision, recall = summary["precision"], summary["recall"]
            clean_virr = (
                virr(precision, recall, ctx.protocol.y_c)
                if recall > 0 and precision > 0
                else 0.0
            )
            cells.append(
                Cell(
                    platform, platform, model_name,
                    ModelResult(
                        platform=platform,
                        model_name=model_name,
                        supported=True,
                        precision=precision,
                        recall=recall,
                        f1=summary["f1"],
                        virr=clean_virr,
                        threshold=float(threshold),
                        test_dimms=clean["report"]["scored_dimms"],
                        test_positive_dimms=summary["ue_dimms_predictable"],
                    ),
                )
            )
            platform_extras[model_name] = {
                "engine": replay_engine,
                "fault_rates": list(fault_rates),
                "curve": curve,
            }
    return cells, extras


def render_chaos_extras(extras: dict) -> str:
    """Human-readable fault-rate curves from the ``extras`` payload."""
    lines = ["CHAOS REPLAY"]
    for platform, models in extras.get("chaos_replay", {}).items():
        for model_name, payload in models.items():
            lines.append(
                f"  {platform}/{model_name} (engine={payload['engine']}):"
            )
            for point in payload["curve"]:
                alarms = point["alarms"]
                health = point["health"]
                cost = point["cost"]
                injection = point["injection"]
                lines.append(
                    f"    rate={point['fault_rate']:.3f}: "
                    f"P/R={alarms['precision']:.2f}/{alarms['recall']:.2f} "
                    f"dead_letter={point['dead_letter']} "
                    f"(dropped={injection['dropped']} "
                    f"corrupted={injection['corrupted']} "
                    f"outage_s={health['outage_seconds']:.0f}) "
                    f"cost={cost['total_cost']:.1f} "
                    f"savings={cost['savings_fraction']:.1%}"
                )
    return "\n".join(lines)
