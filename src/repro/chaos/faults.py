"""Deterministic telemetry fault injection.

The paper's collectors (BMC/MCE pollers flushing to a data lake) lose,
duplicate, delay and garble records in production; every replay path in
this repo historically assumed a pristine stream.  This module makes the
mess *reproducible*: a :class:`TelemetryFaultInjector` is a pure
``LogStore -> LogStore`` transform driven by one seeded generator, so the
same ``(specs, seed)`` pair always yields the same faulted campaign — the
property the hypothesis suite pins down and the ``chaos_replay`` scenario
leans on to sweep fault rates against a clean baseline.

Fault model (each spec is optional and composable):

* :class:`OutageSpec` — per-server collector outages: a server drawn into
  an outage loses *every* record inside its gap window (the collector was
  down, nothing was flushed);
* :class:`DropSpec` — independent record loss;
* :class:`DelaySpec` — bounded late arrival: the collector flushed late,
  so the record lands in the stream at ``t + U(0, max_delay_hours)``.
  Both replay engines key ordering off timestamps, so late arrival and
  bounded reordering are the same fault here by construction;
* :class:`DuplicateSpec` — at-least-once delivery: the record appears
  twice;
* :class:`CorruptSpec` — field corruption of CE records: impossible
  bank/row/column coordinates, negative bit counts, or a garbled
  timestamp.  Every corruption is *detectable* by
  :func:`repro.chaos.quarantine.quarantine_columns`, which is what makes
  "dead-letter count == injected corrupt count" an exact invariant.

Specs are applied per record in the fixed order outage -> drop -> delay ->
duplicate -> corrupt (corruption last, and drawn independently per emitted
copy, so a duplicated record can corrupt one copy and not the other).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.telemetry.log_store import LogStore, iter_stream
from repro.telemetry.records import CERecord


def _check_rate(rate: float) -> None:
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"fault rate must be in [0, 1], got {rate!r}")


@dataclass(frozen=True)
class DropSpec:
    """Drop each record independently with probability ``rate``."""

    rate: float

    def __post_init__(self) -> None:
        _check_rate(self.rate)


@dataclass(frozen=True)
class DuplicateSpec:
    """Emit each record twice with probability ``rate`` (at-least-once)."""

    rate: float

    def __post_init__(self) -> None:
        _check_rate(self.rate)


@dataclass(frozen=True)
class DelaySpec:
    """Delay each record by ``U(0, max_delay_hours)`` with probability
    ``rate`` — the bounded late-arrival / reordering fault."""

    rate: float
    max_delay_hours: float = 6.0

    def __post_init__(self) -> None:
        _check_rate(self.rate)
        if self.max_delay_hours < 0:
            raise ValueError("max_delay_hours must be >= 0")


@dataclass(frozen=True)
class CorruptSpec:
    """Corrupt each emitted CE record with probability ``rate``.

    Corruptions are always detectably invalid (negative or >= 2^20
    coordinates, negative counts, negative timestamps), never silent.
    """

    rate: float

    def __post_init__(self) -> None:
        _check_rate(self.rate)


@dataclass(frozen=True)
class OutageSpec:
    """Each server independently suffers one collector outage with
    probability ``rate``: a ``duration_hours`` window in which all of its
    records are lost."""

    rate: float
    duration_hours: float = 24.0

    def __post_init__(self) -> None:
        _check_rate(self.rate)
        if self.duration_hours < 0:
            raise ValueError("duration_hours must be >= 0")


_SPEC_TYPES = (OutageSpec, DropSpec, DelaySpec, DuplicateSpec, CorruptSpec)


@dataclass
class InjectionReport:
    """What one :meth:`TelemetryFaultInjector.inject` call did."""

    seed: int = 0
    input_records: int = 0
    output_records: int = 0
    dropped: int = 0
    duplicated: int = 0
    delayed: int = 0
    corrupted: int = 0
    outage_dropped: int = 0
    outage_seconds: float = 0.0
    outage_servers: tuple = ()
    outage_windows: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "input_records": self.input_records,
            "output_records": self.output_records,
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "delayed": self.delayed,
            "corrupted": self.corrupted,
            "outage_dropped": self.outage_dropped,
            "outage_seconds": round(self.outage_seconds, 1),
            "outage_servers": list(self.outage_servers),
        }


class TelemetryFaultInjector:
    """Seeded, deterministic fault transform over a telemetry campaign.

    ``specs`` may hold at most one spec of each type (faults compose
    across types, not within one).  Records are visited in the store's
    merged-stream order (:func:`iter_stream` — globally time-sorted with
    CE < UE < event ties), every random decision comes from one
    ``np.random.default_rng(seed)``, and the output records are re-sorted
    by their (possibly delayed) timestamps before ingestion — so the
    faulted store is a valid campaign both engines replay identically.
    """

    def __init__(self, specs, seed: int = 0):
        self.specs = tuple(specs)
        self.seed = int(seed)
        by_type: dict[type, object] = {}
        for spec in self.specs:
            if not isinstance(spec, _SPEC_TYPES):
                raise TypeError(
                    f"unknown fault spec {spec!r}; expected one of "
                    f"{[t.__name__ for t in _SPEC_TYPES]}"
                )
            if type(spec) in by_type:
                raise ValueError(
                    f"duplicate {type(spec).__name__}: one spec per fault "
                    f"type (rates compose across types, not within one)"
                )
            by_type[type(spec)] = spec
        self._outage: OutageSpec | None = by_type.get(OutageSpec)
        self._drop: DropSpec | None = by_type.get(DropSpec)
        self._delay: DelaySpec | None = by_type.get(DelaySpec)
        self._duplicate: DuplicateSpec | None = by_type.get(DuplicateSpec)
        self._corrupt: CorruptSpec | None = by_type.get(CorruptSpec)

    def inject(self, store: LogStore) -> tuple[LogStore, InjectionReport]:
        """Return a new faulted :class:`LogStore` plus the fault ledger."""
        rng = np.random.default_rng(self.seed)
        report = InjectionReport(seed=self.seed, input_records=len(store))
        outages = self._draw_outages(store, rng, report)

        drop = self._drop if self._drop and self._drop.rate > 0 else None
        delay = self._delay if self._delay and self._delay.rate > 0 else None
        duplicate = (
            self._duplicate
            if self._duplicate and self._duplicate.rate > 0 else None
        )
        corrupt = (
            self._corrupt if self._corrupt and self._corrupt.rate > 0 else None
        )

        out_records: list = []
        for record in iter_stream(store):
            t = record.timestamp_hours
            window = outages.get(record.server_id)
            if window is not None and window[0] <= t < window[1]:
                report.outage_dropped += 1
                continue
            if drop is not None and rng.random() < drop.rate:
                report.dropped += 1
                continue
            if delay is not None and rng.random() < delay.rate:
                record = dataclasses.replace(
                    record,
                    timestamp_hours=t
                    + float(rng.uniform(0.0, delay.max_delay_hours)),
                )
                report.delayed += 1
            copies = 1
            if duplicate is not None and rng.random() < duplicate.rate:
                copies = 2
                report.duplicated += 1
            for _ in range(copies):
                emitted = record
                if (
                    corrupt is not None
                    and isinstance(emitted, CERecord)
                    and rng.random() < corrupt.rate
                ):
                    emitted = _corrupt_ce(emitted, rng)
                    report.corrupted += 1
                out_records.append(emitted)

        # Stable re-sort by (possibly delayed) timestamp: ties keep the
        # emission order, i.e. iter_stream's CE < UE < event convention.
        out_records.sort(key=lambda record: record.timestamp_hours)
        faulted = LogStore()
        for config in store.configs.values():
            faulted.add_config(config)
        faulted.ingest_bulk(out_records)
        report.output_records = len(faulted)
        return faulted, report

    def _draw_outages(
        self, store: LogStore, rng, report: InjectionReport
    ) -> dict[str, tuple[float, float]]:
        """Deterministic per-server gap windows (sorted-server order)."""
        outage = self._outage
        if outage is None or outage.rate <= 0 or outage.duration_hours <= 0:
            return {}
        servers = sorted(
            {
                record.server_id
                for record in (store.ces + store.ues + store.events)
            }
        )
        end_hour = store.end_hour
        windows: dict[str, tuple[float, float]] = {}
        seconds = 0.0
        for server in servers:
            if rng.random() >= outage.rate:
                continue
            start = float(
                rng.uniform(0.0, max(end_hour - outage.duration_hours, 0.0))
            )
            stop = start + outage.duration_hours
            windows[server] = (start, stop)
            seconds += (min(stop, end_hour) - start) * 3600.0
        report.outage_servers = tuple(sorted(windows))
        report.outage_windows = dict(windows)
        report.outage_seconds = max(seconds, 0.0)
        return windows


def _corrupt_ce(ce: CERecord, rng) -> CERecord:
    """One detectably-invalid mutation of a CE record."""
    mode = int(rng.integers(0, 3))
    if mode == 0:
        # Impossible coordinate: negative or past the 2^20 address bound.
        target = ("row", "column", "bank")[int(rng.integers(0, 3))]
        if rng.random() < 0.5:
            value = -1 - int(rng.integers(0, 1 << 10))
        else:
            value = (1 << 20) + int(rng.integers(0, 1 << 10))
        return dataclasses.replace(ce, **{target: value})
    if mode == 1:
        # Garbled payload: negative bit-count statistics.
        target = ("dq_count", "beat_count", "error_bit_count")[
            int(rng.integers(0, 3))
        ]
        return dataclasses.replace(ce, **{target: -1 - int(rng.integers(0, 8))})
    # Garbled clock: negative timestamp.
    return dataclasses.replace(
        ce, timestamp_hours=-1.0 - float(rng.random())
    )
