"""Checkpoint/resume plumbing for the replay engines.

A checkpoint is ONE atomically-written pickle (tmp file + ``os.replace``)
with this layout::

    {
      "version":   CHECKPOINT_VERSION,
      "kind":      "replay" | "fleet",       # which engine class wrote it
      "engine":    "batched" | "per_event",  # which walk the position indexes
      "position":  int,   # merged-walk entries already processed
      "state":     bytes, # inner pickle of the engine's mutable state
      "bus_counts": dict, # EventBus publish counters at snapshot time
    }

``state`` is a *single* inner ``pickle.dumps`` of every piece of mutable
decision state — incremental window states, the feature extractor, the
alarm ledger (with its unpicklable EventBus detached), pending micro-batch
queues, rescore throttles, score logs, the fleet policy engine with its
RNG — so shared references (states -> extractor caches, policy actions ->
alarm incidents) survive the round trip.  Everything *derivable* from the
input store (replay kernels, walk orders, vocabularies) is deliberately
NOT stored: the engines rebuild it deterministically on resume and skip
the first ``position`` walk entries.

Because processing is deterministic, a replay killed anywhere at or after
a snapshot and resumed from it produces bit-identical score logs, alarms
and cost digests to the uninterrupted run (wall-clock timing fields are
the one documented exception).
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path

CHECKPOINT_VERSION = 1


def save_checkpoint(path, payload: dict) -> None:
    """Atomically persist one checkpoint payload."""
    path = Path(path)
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_bytes(blob)
    os.replace(tmp, path)


def load_checkpoint(path) -> dict:
    """Load and version-check one checkpoint payload."""
    payload = pickle.loads(Path(path).read_bytes())
    if (
        not isinstance(payload, dict)
        or payload.get("version") != CHECKPOINT_VERSION
    ):
        found = payload.get("version") if isinstance(payload, dict) else "?"
        raise ValueError(
            f"unsupported checkpoint {str(path)!r}: version={found!r} "
            f"(expected {CHECKPOINT_VERSION})"
        )
    return payload


class ReplayCheckpointer:
    """Periodic-snapshot + halt/resume driver for one replay call.

    The engines call :meth:`step` at the top of every merged-walk
    iteration, *before* processing the entry, so ``position`` always
    equals the number of entries already processed and a snapshot written
    at ``position`` resumes with zero reprocessing.  ``halt_after=N``
    stops the walk after N entries processed *in this call* (writing a
    final snapshot first when a path is configured) — the deterministic
    stand-in for a killed process that the bit-identity suite uses.
    """

    def __init__(
        self,
        *,
        every: int = 0,
        path=None,
        halt_after: int | None = None,
        resume_from=None,
        engine: str = "",
        kind: str = "",
    ):
        self.every = int(every or 0)
        if self.every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        self.path = Path(path) if path is not None else None
        if self.every and self.path is None:
            raise ValueError("checkpoint_every needs a checkpoint_path")
        self.halt_after = None if halt_after is None else int(halt_after)
        self.engine = engine
        self.kind = kind
        self.resume_state: dict | None = None
        if resume_from is not None:
            snap = load_checkpoint(resume_from)
            if snap.get("kind") != kind or snap.get("engine") != engine:
                raise ValueError(
                    f"checkpoint {str(resume_from)!r} was written by "
                    f"kind={snap.get('kind')!r} engine={snap.get('engine')!r}"
                    f"; this replay is kind={kind!r} engine={engine!r}"
                )
            self.resume_state = snap
        self.position = (
            int(self.resume_state["position"]) if self.resume_state else 0
        )
        self.saved = 0
        self._processed = 0
        self._since_save = 0

    def step(self, snapshot_fn) -> bool:
        """Account one walk entry about to be processed.

        ``snapshot_fn()`` must return ``{"state": bytes, "bus_counts":
        dict}`` describing the engine state *after* ``position`` entries;
        it is only called when a snapshot is actually due.  Returns True
        when the caller must halt without processing the entry.
        """
        halt = (
            self.halt_after is not None
            and self._processed >= self.halt_after
        )
        due = (
            self.path is not None
            and self.every > 0
            and self._since_save >= self.every
        )
        if (halt or due) and self.path is not None:
            payload = dict(snapshot_fn())
            payload["version"] = CHECKPOINT_VERSION
            payload["kind"] = self.kind
            payload["engine"] = self.engine
            payload["position"] = self.position
            save_checkpoint(self.path, payload)
            self.saved += 1
            self._since_save = 0
        if halt:
            return True
        self.position += 1
        self._processed += 1
        self._since_save += 1
        return False
