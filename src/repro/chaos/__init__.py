"""Chaos engineering for the replay paths: fault injection, stream
quarantine, and checkpoint/resume.

The ``chaos_replay`` scenario lives in :mod:`repro.chaos.scenario` and is
imported lazily by the experiment runner (not here, to keep this package
import-safe from inside the streaming/fleetops engines).
"""

from repro.chaos.checkpoint import (
    CHECKPOINT_VERSION,
    ReplayCheckpointer,
    load_checkpoint,
    save_checkpoint,
)
from repro.chaos.faults import (
    CorruptSpec,
    DelaySpec,
    DropSpec,
    DuplicateSpec,
    InjectionReport,
    OutageSpec,
    TelemetryFaultInjector,
)
from repro.chaos.quarantine import (
    DEAD_LETTER_TOPIC,
    QuarantineReport,
    RejectReason,
    quarantine_columns,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "CorruptSpec",
    "DEAD_LETTER_TOPIC",
    "DelaySpec",
    "DropSpec",
    "DuplicateSpec",
    "InjectionReport",
    "OutageSpec",
    "QuarantineReport",
    "RejectReason",
    "ReplayCheckpointer",
    "TelemetryFaultInjector",
    "load_checkpoint",
    "quarantine_columns",
    "save_checkpoint",
]
