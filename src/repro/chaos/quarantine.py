"""Stream quarantine: vectorized validation + dead-letter accounting.

Both replay engines consume :class:`~repro.telemetry.columnar
.TelemetryColumns` tables, so malformed telemetry is caught *once*, in
whole-table numpy passes, before either walk starts — a corrupt record
becomes a typed dead letter on the :class:`~repro.streaming.bus.EventBus`
instead of an exception (or silent nonsense) mid-replay.

The contract that keeps clean runs bit-identical: when nothing is
invalid, :func:`quarantine_columns` returns the *original* columns object
untouched — no copy, no re-sort, no vocabulary re-interning — so with the
fault injector disabled every existing parity gate holds by construction.
When records are rejected, the filtered tables share the original
vocabularies (codes stay stable) and one
:data:`DEAD_LETTER_TOPIC` message is published per rejected record with
its :class:`RejectReason`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.telemetry.columnar import (
    CE_BANK,
    CE_BEAT_COUNT,
    CE_BEAT_INTERVAL,
    CE_COLUMN,
    CE_DEVICE0,
    CE_DIMM,
    CE_DQ_COUNT,
    CE_DQ_INTERVAL,
    CE_ERROR_BITS,
    CE_N_DEVICES,
    CE_ROW,
    CE_T,
    EV_DIMM,
    EV_KIND,
    EV_T,
    KIND_CODES,
    TelemetryColumns,
    UE_DIMM,
    UE_T,
)

#: EventBus topic carrying one message per quarantined record.
DEAD_LETTER_TOPIC = "stream.dead_letter"

#: Exclusive upper bound for any DRAM coordinate column (the columnar
#: store's float64 exactness contract: "coordinates are < 2^20").
MAX_COORDINATE = 1 << 20


class RejectReason(enum.Enum):
    """Why a record was quarantined (typed, not a free-form string)."""

    BAD_TIMESTAMP = "bad_timestamp"
    BAD_COORDINATE = "bad_coordinate"
    BAD_COUNT = "bad_count"
    BAD_EVENT_KIND = "bad_event_kind"


#: Reason <-> small-int codes for the vectorized marking passes (0 = ok).
_REASON_CODES = {
    reason: code for code, reason in enumerate(RejectReason, start=1)
}
_REASON_OF_CODE = {code: reason for reason, code in _REASON_CODES.items()}


@dataclass
class QuarantineReport:
    """Reject accounting of one :func:`quarantine_columns` pass."""

    total: int = 0
    by_reason: dict = field(default_factory=dict)  # reason value -> count
    by_kind: dict = field(default_factory=dict)  # "ce"/"ue"/"event" -> count

    def to_dict(self) -> dict:
        return {
            "rejected_events": self.total,
            "rejects": dict(self.by_reason),
            "rejects_by_kind": dict(self.by_kind),
        }


def _mark(codes: np.ndarray, mask: np.ndarray, reason: RejectReason) -> None:
    """Tag rows matching ``mask`` that have no earlier (graver) reason."""
    codes[(codes == 0) & mask] = _REASON_CODES[reason]


def _ce_reject_codes(rows: np.ndarray) -> np.ndarray:
    codes = np.zeros(rows.shape[0], dtype=np.int8)
    if not rows.size:
        return codes
    t = rows[:, CE_T]
    _mark(codes, ~np.isfinite(t) | (t < 0), RejectReason.BAD_TIMESTAMP)
    coords = rows[:, [CE_ROW, CE_COLUMN, CE_BANK, CE_DEVICE0]]
    _mark(
        codes,
        (~np.isfinite(coords) | (coords < 0) | (coords >= MAX_COORDINATE))
        .any(axis=1),
        RejectReason.BAD_COORDINATE,
    )
    counts = rows[
        :,
        [
            CE_DQ_COUNT, CE_BEAT_COUNT, CE_DQ_INTERVAL, CE_BEAT_INTERVAL,
            CE_N_DEVICES, CE_ERROR_BITS,
        ],
    ]
    _mark(
        codes,
        (~np.isfinite(counts) | (counts < 0)).any(axis=1),
        RejectReason.BAD_COUNT,
    )
    return codes


def _ue_reject_codes(rows: np.ndarray) -> np.ndarray:
    codes = np.zeros(rows.shape[0], dtype=np.int8)
    if not rows.size:
        return codes
    t = rows[:, UE_T]
    _mark(codes, ~np.isfinite(t) | (t < 0), RejectReason.BAD_TIMESTAMP)
    return codes


def _event_reject_codes(rows: np.ndarray) -> np.ndarray:
    codes = np.zeros(rows.shape[0], dtype=np.int8)
    if not rows.size:
        return codes
    t = rows[:, EV_T]
    _mark(codes, ~np.isfinite(t) | (t < 0), RejectReason.BAD_TIMESTAMP)
    kind = rows[:, EV_KIND]
    _mark(
        codes,
        ~np.isfinite(kind) | (kind < 0) | (kind >= len(KIND_CODES)),
        RejectReason.BAD_EVENT_KIND,
    )
    return codes


def _dimm_label(columns: TelemetryColumns, raw: float) -> str:
    code = int(raw)
    if 0 <= code < len(columns.dimms):
        return columns.dimms.name(code)
    return f"<dimm:{code}>"


def quarantine_columns(
    columns: TelemetryColumns, bus=None, metrics=None, platform: str = ""
) -> tuple[TelemetryColumns, QuarantineReport]:
    """Split malformed rows out of a columnar store.

    Returns ``(valid_columns, report)``.  With zero rejects the input
    object itself is returned (identity — the clean-run bit-for-bit
    guarantee); otherwise a new :class:`TelemetryColumns` holding only the
    valid rows, sharing the original vocabularies.  ``bus`` (optional)
    receives one :data:`DEAD_LETTER_TOPIC` message per rejected record.
    ``metrics`` (a :class:`repro.obs.MetricsRegistry`) counts rejects as
    ``repro_quarantine_rejects_total{reason,platform}`` for standalone
    callers; the replay engines instead project their reports' health
    ledgers, so they leave this unset (no double counting).
    """
    ce_rows = columns.ces.rows()
    ue_rows = columns.ues.rows()
    ev_rows = columns.events.rows()
    ce_codes = _ce_reject_codes(ce_rows)
    ue_codes = _ue_reject_codes(ue_rows)
    ev_codes = _event_reject_codes(ev_rows)

    report = QuarantineReport()
    total = int(
        np.count_nonzero(ce_codes)
        + np.count_nonzero(ue_codes)
        + np.count_nonzero(ev_codes)
    )
    if total == 0:
        _count_rejects(metrics, platform, report)
        return columns, report

    filtered = TelemetryColumns()
    filtered.dimms = columns.dimms
    filtered.servers = columns.servers
    filtered.ces.extend(ce_rows[ce_codes == 0])
    filtered.ues.extend(ue_rows[ue_codes == 0])
    filtered.events.extend(ev_rows[ev_codes == 0])
    filtered.version = columns.version

    for kind, rows, codes, t_col, dimm_col in (
        ("ce", ce_rows, ce_codes, CE_T, CE_DIMM),
        ("ue", ue_rows, ue_codes, UE_T, UE_DIMM),
        ("event", ev_rows, ev_codes, EV_T, EV_DIMM),
    ):
        for i in np.flatnonzero(codes).tolist():
            reason = _REASON_OF_CODE[int(codes[i])]
            report.total += 1
            report.by_reason[reason.value] = (
                report.by_reason.get(reason.value, 0) + 1
            )
            report.by_kind[kind] = report.by_kind.get(kind, 0) + 1
            if bus is not None:
                bus.publish(
                    DEAD_LETTER_TOPIC,
                    {
                        "kind": kind,
                        "reason": reason.value,
                        "timestamp_hours": float(rows[i, t_col]),
                        "dimm": _dimm_label(columns, rows[i, dimm_col]),
                    },
                )
    _count_rejects(metrics, platform, report)
    return filtered, report


def _count_rejects(metrics, platform: str, report: QuarantineReport) -> None:
    """Mirror one quarantine pass's by-reason counts into a registry."""
    if metrics is None:
        return
    family = metrics.counter(
        "repro_quarantine_rejects_total",
        "Quarantined records by typed RejectReason.",
        labels=("reason", "platform"),
    )
    for reason in RejectReason:
        family.labels(reason=reason.value, platform=platform).inc(
            report.by_reason.get(reason.value, 0)
        )
