"""Command-line interface.

The scenario-first entry point covers every experiment::

    python -m repro run transfer_matrix --set scale=0.1
    python -m repro run single_platform --set models=lightgbm --cache-dir .cache
    python -m repro run streaming_replay --set platform=k920
    python -m repro run --spec spec.json --out result.json
    python -m repro replay --platform intel_purley --cache-dir .cache
    python -m repro fleetops --assign k920=intel_purley --cache-dir .cache
    python -m repro fleetops --metrics-out run.obs.jsonl   # observability dump
    python -m repro metrics run.obs.jsonl --format prometheus
    python -m repro metrics --diff a.obs.jsonl b.obs.jsonl
    python -m repro replay --platform k920 --serve-metrics 9109 \
        --heartbeat-every 2000                             # live scrape endpoint
    python -m repro top http://127.0.0.1:9109              # watch heartbeats

plus the original workflow commands (now thin shims over the same API)::

    python -m repro simulate  --platform intel_purley --scale 0.2 --out logs.jsonl
    python -m repro analyze   --logs logs.jsonl        # Table I / Fig 4 / Fig 5
    python -m repro table2    --scale 0.25             # algorithm comparison
    python -m repro lifecycle --platform intel_purley  # MLOps loop
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from contextlib import contextmanager
from pathlib import Path

from repro.analysis import fig4_series, fig5_panels, table1_series
from repro.evaluation.protocol import ExperimentProtocol
from repro.evaluation.reporting import render_fig5, render_table1, render_table2
from repro.evaluation.table2 import run_table2
from repro.experiments.registry import PLATFORMS, SCENARIOS, UnknownNameError
from repro.experiments.runner import RunContext, run_spec
from repro.experiments.spec import ENGINE_CHOICES, RunSpec
from repro.features.sampling import SamplingParams
from repro.mlops.lifecycle import run_lifecycle
from repro.simulator import FleetConfig, simulate_fleet
from repro.telemetry.log_store import LogStore

#: Platform names come from the registry (populated by importing the
#: simulator above); the tuple is kept for argparse ``choices``.
PLATFORM_CHOICES = tuple(PLATFORMS.names())


def _add_telemetry_flags(parser) -> None:
    """Shared live-telemetry flags for the replaying/serving verbs."""
    parser.add_argument(
        "--serve-metrics", type=int, default=None, metavar="PORT",
        help="serve live telemetry over HTTP while the run executes "
        "(/metrics, /metrics.json, /spans, /healthz, /progress); "
        "0 picks an ephemeral port",
    )
    parser.add_argument(
        "--heartbeat-every", type=int, default=0, metavar="N",
        help="publish an in-flight heartbeat snapshot every N events "
        "(0 = off); event-count based, so outputs stay bit-identical",
    )


@contextmanager
def _telemetry(args):
    """Resolve --serve-metrics / --heartbeat-every / --metrics-out.

    Yields ``(obs, params)``: a caller-owned Observability bundle (or
    ``None`` when no telemetry flag asked for one) plus the spec params
    to merge.  The scrape server, when requested, lives exactly as long
    as the ``with`` body, so the run is pollable mid-flight.
    """
    heartbeat = int(getattr(args, "heartbeat_every", 0) or 0)
    port = getattr(args, "serve_metrics", None)
    wants_obs = (
        port is not None
        or heartbeat
        or getattr(args, "metrics_out", None) is not None
    )
    if not wants_obs:
        yield None, {}
        return
    from repro.obs import Observability, TelemetryServer

    obs = Observability()
    params: dict = {"observability": True}
    if heartbeat:
        params["heartbeat_every"] = heartbeat
    if port is None:
        yield obs, params
        return
    server = TelemetryServer(obs, port=port)
    server.start()
    print(f"serving telemetry at {server.url}/metrics")
    try:
        yield obs, params
    finally:
        server.stop()


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Cross-architecture DRAM failure prediction"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="run a registered experiment scenario from a RunSpec"
    )
    run.add_argument(
        "scenario", nargs="?", default=None,
        help="registered scenario name (omit with --spec)",
    )
    run.add_argument(
        "--spec", type=Path, default=None,
        help="load the RunSpec from a JSON file",
    )
    run.add_argument(
        "--set", dest="overrides", action="append", default=[],
        metavar="KEY=VALUE",
        help="override one RunSpec field (repeatable), e.g. --set scale=0.1",
    )
    run.add_argument(
        "--engine", choices=ENGINE_CHOICES, default=None,
        help="feature-extraction engine (default: fleet)",
    )
    run.add_argument(
        "--workers", type=int, default=None,
        help="shard the fleet extraction over N processes",
    )
    run.add_argument(
        "--cache-dir", type=Path, default=None,
        help="persist simulations/SampleSets in this artifact-cache directory",
    )
    run.add_argument(
        "--out", type=Path, default=None,
        help="write the RunResult as JSON",
    )

    replay = sub.add_parser(
        "replay",
        help="stream a (cached) campaign through the streaming scorer",
    )
    replay.add_argument("--platform", choices=PLATFORM_CHOICES, required=True)
    replay.add_argument("--scale", type=float, default=0.25)
    replay.add_argument("--hours", type=float, default=2880.0)
    replay.add_argument("--seed", type=int, default=7)
    replay.add_argument(
        "--model", default="lightgbm", help="registered model name"
    )
    replay.add_argument(
        "--batch-size", type=int, default=256,
        help="micro-batch size for model scoring",
    )
    replay.add_argument(
        "--rescore-interval-hours", type=float, default=1.0 / 12.0,
        help="minimum hours between rescorings of one DIMM (default 5 min)",
    )
    replay.add_argument(
        "--replay-engine", choices=("batched", "per_event"),
        default="batched",
        help="replay kernel: column-wise batched numpy (default) or the "
        "pure-Python per-event reference",
    )
    replay.add_argument(
        "--verify-parity", action="store_true",
        help="cross-check every streamed vector against transform_one",
    )
    replay.add_argument(
        "--workers", type=int, default=None,
        help="replay through the distributed coordinator with N worker "
        "processes over DIMM shards",
    )
    replay.add_argument(
        "--cache-dir", type=Path, default=None,
        help="serve/persist the simulation via this artifact-cache directory",
    )
    replay.add_argument(
        "--metrics-out", type=Path, default=None,
        help="enable the observability layer and write its metric/span "
        "dump (repro-obs-v1 JSONL) to this path",
    )
    replay.add_argument(
        "--out", type=Path, default=None,
        help="write the RunResult (incl. streaming report) as JSON",
    )
    _add_telemetry_flags(replay)

    chaos = sub.add_parser(
        "chaos",
        help="sweep telemetry fault rates through the streaming scorer",
    )
    chaos.add_argument("--platform", choices=PLATFORM_CHOICES, required=True)
    chaos.add_argument("--scale", type=float, default=0.25)
    chaos.add_argument("--hours", type=float, default=2880.0)
    chaos.add_argument("--seed", type=int, default=7)
    chaos.add_argument(
        "--model", default="lightgbm", help="registered model name"
    )
    chaos.add_argument(
        "--fault-rates", default="0.0,0.02,0.05",
        help="comma-separated fault-rate sweep (default: 0.0,0.02,0.05)",
    )
    chaos.add_argument(
        "--replay-engine", choices=("batched", "per_event"),
        default="batched",
        help="replay kernel: column-wise batched numpy (default) or the "
        "pure-Python per-event reference",
    )
    chaos.add_argument(
        "--cache-dir", type=Path, default=None,
        help="serve/persist the simulation via this artifact-cache directory",
    )
    chaos.add_argument(
        "--metrics-out", type=Path, default=None,
        help="enable the observability layer and write its metric/span "
        "dump (repro-obs-v1 JSONL) to this path",
    )
    chaos.add_argument(
        "--out", type=Path, default=None,
        help="write the RunResult (incl. fault-rate curves) as JSON",
    )
    _add_telemetry_flags(chaos)

    fleetops = sub.add_parser(
        "fleetops",
        help="replay a merged heterogeneous fleet with mitigation + costs",
    )
    fleetops.add_argument(
        "--platforms", default=",".join(PLATFORM_CHOICES),
        help="comma-separated serving platforms (default: all)",
    )
    fleetops.add_argument(
        "--model", default="lightgbm",
        help="default production model for every platform",
    )
    fleetops.add_argument(
        "--assign", action="append", default=[], metavar="PLATFORM=TRAIN",
        help="serve PLATFORM with a model trained on TRAIN (repeatable), "
        "e.g. --assign k920=intel_purley",
    )
    fleetops.add_argument("--scale", type=float, default=0.25)
    fleetops.add_argument("--hours", type=float, default=2880.0)
    fleetops.add_argument("--seed", type=int, default=7)
    fleetops.add_argument(
        "--replay-engine", choices=("batched", "per_event"),
        default="batched",
        help="replay kernel: column-wise batched numpy (default) or the "
        "pure-Python per-event reference",
    )
    fleetops.add_argument(
        "--workers", type=int, default=None,
        help="replay through the distributed coordinator with N worker "
        "processes over DIMM shards",
    )
    fleetops.add_argument(
        "--set", dest="overrides", action="append", default=[],
        metavar="KEY=VALUE",
        help="override one RunSpec field, incl. nested params "
        "(e.g. --set params.budget.vm_migrate=2)",
    )
    fleetops.add_argument(
        "--cache-dir", type=Path, default=None,
        help="serve/persist artifacts via this artifact-cache directory",
    )
    fleetops.add_argument(
        "--metrics-out", type=Path, default=None,
        help="enable the observability layer and write its metric/span "
        "dump (repro-obs-v1 JSONL) to this path",
    )
    fleetops.add_argument(
        "--out", type=Path, default=None,
        help="write the RunResult (incl. the fleet report) as JSON",
    )
    _add_telemetry_flags(fleetops)

    shard = sub.add_parser(
        "shard",
        help="partition simulated fleet telemetry into a distributed "
        "shard set (npz files + manifest)",
    )
    shard.add_argument(
        "--platforms", default=",".join(PLATFORM_CHOICES),
        help="comma-separated platforms (default: all)",
    )
    shard.add_argument("--scale", type=float, default=0.25)
    shard.add_argument("--hours", type=float, default=2880.0)
    shard.add_argument("--seed", type=int, default=7)
    shard.add_argument(
        "--shards", type=int, default=2, help="number of shard files"
    )
    shard.add_argument(
        "--out", type=Path, default=None,
        help="directory for shard_NNNN.npz files + manifest.json "
        "(omit with --cache-dir to build into the cache's shard tier)",
    )
    shard.add_argument(
        "--cache-dir", type=Path, default=None,
        help="serve/persist the simulations via this artifact-cache "
        "directory (also caches the shard set itself)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the distributed scoring tier: sharded replay gated "
        "bit-for-bit against single-process, plus async batched serving",
    )
    serve.add_argument(
        "--platforms", default=",".join(PLATFORM_CHOICES),
        help="comma-separated serving platforms (default: all)",
    )
    serve.add_argument(
        "--model", default="lightgbm",
        help="production model for every platform",
    )
    serve.add_argument("--scale", type=float, default=0.25)
    serve.add_argument("--hours", type=float, default=2880.0)
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument(
        "--workers", type=int, default=2,
        help="replay worker processes (default 2)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=64,
        help="async serving micro-batch size",
    )
    serve.add_argument(
        "--max-wait-ms", type=float, default=2.0,
        help="async serving batching window",
    )
    serve.add_argument(
        "--max-queue", type=int, default=256,
        help="async serving queue bound (overflow sheds to the heuristic)",
    )
    serve.add_argument(
        "--serve-records", type=int, default=2000,
        help="stream records to drive through the async service",
    )
    serve.add_argument(
        "--set", dest="overrides", action="append", default=[],
        metavar="KEY=VALUE",
        help="override one RunSpec field, incl. nested params",
    )
    serve.add_argument(
        "--cache-dir", type=Path, default=None,
        help="serve/persist artifacts via this artifact-cache directory",
    )
    serve.add_argument(
        "--metrics-out", type=Path, default=None,
        help="enable the observability layer and write its metric/span "
        "dump (repro-obs-v1 JSONL) to this path",
    )
    serve.add_argument(
        "--out", type=Path, default=None,
        help="write the RunResult (incl. parity + SLO report) as JSON",
    )
    _add_telemetry_flags(serve)

    metrics = sub.add_parser(
        "metrics",
        help="inspect an observability dump written via --metrics-out",
    )
    metrics.add_argument(
        "dump", type=Path, nargs="?", default=None,
        help="repro-obs-v1 JSONL dump file (omit with --diff)",
    )
    metrics.add_argument(
        "--format", choices=("summary", "prometheus", "spans"),
        default="summary",
        help="render as a one-screen summary (default), Prometheus text "
        "exposition, or the indented span tree",
    )
    metrics.add_argument(
        "--diff", type=Path, nargs=2, default=None, metavar=("A", "B"),
        help="render per-family deltas between two dumps (counter "
        "deltas, gauge moves, histogram quantile shifts)",
    )

    top = sub.add_parser(
        "top",
        help="poll a live telemetry endpoint (--serve-metrics) and "
        "render in-flight heartbeats",
    )
    top.add_argument(
        "url",
        help="endpoint base URL, e.g. http://127.0.0.1:9109 (the "
        "address printed by --serve-metrics)",
    )
    top.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between polls (default 2)",
    )
    top.add_argument(
        "--count", type=int, default=0,
        help="number of polls before exiting (0 = until interrupted)",
    )

    simulate = sub.add_parser("simulate", help="simulate one platform fleet")
    simulate.add_argument("--platform", choices=PLATFORM_CHOICES, required=True)
    simulate.add_argument("--scale", type=float, default=0.2)
    simulate.add_argument("--hours", type=float, default=2160.0)
    simulate.add_argument("--seed", type=int, default=7)
    simulate.add_argument("--out", type=Path, required=True)

    analyze = sub.add_parser("analyze", help="Table I / Fig 4 / Fig 5 from logs")
    analyze.add_argument("--logs", type=Path, action="append", required=True,
                         help="JSONL log file; repeat for multiple platforms")
    analyze.add_argument("--platform", action="append", default=None,
                         help="platform name per --logs entry")

    table2 = sub.add_parser("table2", help="run the algorithm comparison")
    table2.add_argument("--scale", type=float, default=0.25)
    table2.add_argument("--hours", type=float, default=2880.0)
    table2.add_argument("--seed", type=int, default=7)
    table2.add_argument(
        "--models", default="risky_ce_pattern,random_forest,lightgbm",
        help="comma-separated model names",
    )

    lifecycle = sub.add_parser("lifecycle", help="run the MLOps lifecycle")
    lifecycle.add_argument("--platform", choices=PLATFORM_CHOICES, required=True)
    lifecycle.add_argument("--scale", type=float, default=0.2)
    lifecycle.add_argument("--hours", type=float, default=2160.0)
    lifecycle.add_argument("--seed", type=int, default=7)
    lifecycle.add_argument(
        "--cache-dir", type=Path, default=None,
        help="serve/persist the simulation via this artifact-cache directory",
    )
    return parser


def _cmd_run(args) -> int:
    if args.spec is not None:
        try:
            spec = RunSpec.from_json_file(args.spec)
        except (OSError, ValueError, json.JSONDecodeError) as error:
            print(f"error: cannot load spec {args.spec}: {error}", file=sys.stderr)
            return 2
        if args.scenario is not None:
            spec = spec.with_overrides([f"scenario={args.scenario}"])
    elif args.scenario is not None:
        spec = RunSpec(scenario=args.scenario)
    else:
        print(
            "error: name a scenario or pass --spec; registered scenarios: "
            + ", ".join(SCENARIOS.names() or ("<import a scenario module>",)),
            file=sys.stderr,
        )
        return 2

    try:
        spec = spec.with_overrides(args.overrides)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    flag_overrides = []
    if args.engine is not None:
        flag_overrides.append(f"engine={args.engine}")
    if args.workers is not None:
        flag_overrides.append(f"workers={args.workers}")
    if args.cache_dir is not None:
        flag_overrides.append(f"cache_dir={args.cache_dir}")
    if flag_overrides:
        spec = spec.with_overrides(flag_overrides)

    try:
        result = run_spec(spec)
    except (UnknownNameError, ValueError) as error:
        message = error.args[0] if error.args else error
        print(f"error: {message}", file=sys.stderr)
        return 2
    _emit_result(result, args.out)
    return _nonfinite_status(result) or _streaming_parity_status(result)


def _emit_result(result, out) -> None:
    """Render a RunResult and write the JSON artifact if requested.

    The artifact is written before callers gate on cell health: a
    degenerate cell's full per-cell results are exactly what the user
    needs to debug it.
    """
    print(result.render())
    _print_extras(result)
    print(result.render_cache_stats())
    if out is not None:
        result.to_json_file(out)
        print(f"wrote {out}")


def _nonfinite_status(result) -> int:
    """Exit status for degenerate cells, with one stderr line per cell."""
    bad = result.any_nonfinite()
    for cell in bad:
        print(
            f"error: non-finite metrics in cell "
            f"({cell.train_platform} -> {cell.test_platform}, {cell.model})",
            file=sys.stderr,
        )
    return 1 if bad else 0


def _print_extras(result) -> None:
    """Render every extras payload that has a registered renderer."""
    if "streaming_replay" in result.extras:
        from repro.streaming.scenario import render_streaming_extras

        print(render_streaming_extras(result.extras))
    if "fleet_ops" in result.extras:
        from repro.fleetops.scenario import render_fleet_extras

        print(render_fleet_extras(result.extras))
    if "lead_time" in result.extras:
        from repro.experiments.scenarios import render_lead_time_extras

        print(render_lead_time_extras(result.extras))
    if "chaos_replay" in result.extras:
        from repro.chaos.scenario import render_chaos_extras

        print(render_chaos_extras(result.extras))
    if "distributed_replay" in result.extras:
        from repro.distributed.scenario import render_distributed_extras

        print(render_distributed_extras(result.extras))


def _streaming_parity_status(result) -> int:
    """Exit status of a run's streaming parity record (0 when absent)."""
    failures = 0
    for models in result.extras.get("streaming_replay", {}).values():
        for payload in models.values():
            failures += payload["streaming"].get("parity", {}).get(
                "mismatches", 0
            )
    if failures:
        print(f"error: {failures} parity mismatches", file=sys.stderr)
        return 1
    return 0


def _write_metrics_out(result, metrics_out) -> None:
    """Dump ``extras["observability"]`` as repro-obs-v1 JSONL."""
    if metrics_out is None:
        return
    from repro.obs import write_observability

    payload = result.extras.get("observability")
    if payload is None:
        print(
            "warning: no observability payload to write", file=sys.stderr
        )
        return
    write_observability(metrics_out, payload)
    print(f"wrote {metrics_out}")


def _cmd_replay(args) -> int:
    """Thin shim over ``repro run streaming_replay`` for one platform."""
    from repro.streaming.scenario import render_streaming_extras

    with _telemetry(args) as (obs, tele_params):
        spec = RunSpec(
            scenario="streaming_replay",
            platforms=(args.platform,),
            models=(args.model,),
            scale=args.scale,
            hours=args.hours,
            seed=args.seed,
            cache_dir=str(args.cache_dir) if args.cache_dir else None,
            params={
                "batch_size": args.batch_size,
                "rescore_interval_hours": args.rescore_interval_hours,
                "engine": args.replay_engine,
                "verify_parity": bool(args.verify_parity),
            }
            | (
                {"replay_workers": args.workers}
                if args.workers is not None
                else {}
            )
            | tele_params,
        )
        try:
            result = run_spec(spec, obs=obs)
        except (UnknownNameError, ValueError) as error:
            message = error.args[0] if error.args else error
            print(f"error: {message}", file=sys.stderr)
            return 2
    print(render_streaming_extras(result.extras))
    print(result.render_cache_stats())
    _write_metrics_out(result, args.metrics_out)
    if args.out is not None:
        result.to_json_file(args.out)
        print(f"wrote {args.out}")
    return _streaming_parity_status(result)


def _cmd_chaos(args) -> int:
    """Thin shim over ``repro run chaos_replay`` for one platform."""
    from repro.chaos.scenario import render_chaos_extras

    try:
        fault_rates = [
            float(rate)
            for rate in args.fault_rates.split(",")
            if rate.strip()
        ]
    except ValueError:
        print(
            f"error: bad --fault-rates {args.fault_rates!r}: expected "
            f"comma-separated floats",
            file=sys.stderr,
        )
        return 2
    with _telemetry(args) as (obs, tele_params):
        spec = RunSpec(
            scenario="chaos_replay",
            platforms=(args.platform,),
            models=(args.model,),
            scale=args.scale,
            hours=args.hours,
            seed=args.seed,
            cache_dir=str(args.cache_dir) if args.cache_dir else None,
            params={
                "fault_rates": fault_rates,
                "engine": args.replay_engine,
            }
            | tele_params,
        )
        try:
            result = run_spec(spec, obs=obs)
        except (UnknownNameError, ValueError) as error:
            message = error.args[0] if error.args else error
            print(f"error: {message}", file=sys.stderr)
            return 2
    print(render_chaos_extras(result.extras))
    print(result.render_cache_stats())
    _write_metrics_out(result, args.metrics_out)
    if args.out is not None:
        result.to_json_file(args.out)
        print(f"wrote {args.out}")
    return _nonfinite_status(result)


def _cmd_fleetops(args) -> int:
    """Thin shim over ``repro run fleet_ops`` with --assign sugar."""
    assignments: dict[str, dict] = {}
    for entry in args.assign:
        platform, sep, train_platform = entry.partition("=")
        if not sep or not platform.strip() or not train_platform.strip():
            print(
                f"error: bad --assign {entry!r}: expected PLATFORM=TRAIN",
                file=sys.stderr,
            )
            return 2
        assignments[platform.strip()] = {
            "train_platform": train_platform.strip()
        }
    platforms = tuple(
        name.strip() for name in args.platforms.split(",") if name.strip()
    )
    with _telemetry(args) as (obs, tele_params):
        spec = RunSpec(
            scenario="fleet_ops",
            platforms=platforms,
            models=(args.model,),
            scale=args.scale,
            hours=args.hours,
            seed=args.seed,
            cache_dir=str(args.cache_dir) if args.cache_dir else None,
            params=(
                {"assignments": assignments} if assignments else {}
            )
            | {"engine": args.replay_engine}
            | (
                {"replay_workers": args.workers}
                if args.workers is not None
                else {}
            )
            | tele_params,
        )
        try:
            spec = spec.with_overrides(args.overrides)
            result = run_spec(spec, obs=obs)
        except (UnknownNameError, ValueError) as error:
            message = error.args[0] if error.args else error
            print(f"error: {message}", file=sys.stderr)
            return 2
    _emit_result(result, args.out)
    _write_metrics_out(result, args.metrics_out)
    return _nonfinite_status(result)


def _cmd_shard(args) -> int:
    """Partition (cached) simulated campaigns into a shard set."""
    from repro.distributed.shards import write_fleet_shards
    from repro.experiments.cache import ShardSetKey

    if args.out is None and args.cache_dir is None:
        print("error: give --out and/or --cache-dir", file=sys.stderr)
        return 2
    platforms = tuple(
        name.strip() for name in args.platforms.split(",") if name.strip()
    )
    spec = RunSpec(
        scenario="fleet_ops",
        platforms=platforms,
        scale=args.scale,
        hours=args.hours,
        seed=args.seed,
        cache_dir=str(args.cache_dir) if args.cache_dir else None,
    )
    try:
        context = RunContext(spec)
        stores = {
            platform: context.simulation(platform).store.columns
            for platform in platforms
        }
    except (UnknownNameError, ValueError) as error:
        message = error.args[0] if error.args else error
        print(f"error: {message}", file=sys.stderr)
        return 2
    if args.out is not None:
        out_dir = args.out
        manifest = write_fleet_shards(stores, args.shards, out_dir)
    else:
        # No explicit destination: build (or reuse) the cache's shard tier.
        out_dir, manifest = context.cache.shard_set(
            ShardSetKey(
                simulations=tuple(
                    context.simulation_key(platform)
                    for platform in sorted(platforms)
                ),
                n_shards=args.shards,
            ),
            lambda: stores,
        )
    print(
        f"wrote {manifest.n_shards} shards for "
        f"{len(manifest.platforms)} platforms to {out_dir} "
        f"(format v{manifest.format}, fingerprint {manifest.fingerprint})"
    )
    for entry in manifest.shards:
        detail = " ".join(
            f"{platform}:{info['dimms']}d/{info['ces']}ce"
            for platform, info in entry["platforms"].items()
        )
        print(f"  {entry['path']}: {entry['rows']} rows ({detail})")
    print(context.cache.render_stats())
    return 0


def _cmd_serve(args) -> int:
    """Thin shim over ``repro run distributed_replay`` with a parity gate."""
    platforms = tuple(
        name.strip() for name in args.platforms.split(",") if name.strip()
    )
    with _telemetry(args) as (obs, tele_params):
        spec = RunSpec(
            scenario="distributed_replay",
            platforms=platforms,
            models=(args.model,),
            scale=args.scale,
            hours=args.hours,
            seed=args.seed,
            cache_dir=str(args.cache_dir) if args.cache_dir else None,
            params={
                "replay_workers": args.workers,
                "serve": {
                    "max_batch": args.max_batch,
                    "max_wait_ms": args.max_wait_ms,
                    "max_queue": args.max_queue,
                    "max_records": args.serve_records,
                },
            }
            | tele_params,
        )
        try:
            spec = spec.with_overrides(args.overrides)
            result = run_spec(spec, obs=obs)
        except (UnknownNameError, ValueError) as error:
            message = error.args[0] if error.args else error
            print(f"error: {message}", file=sys.stderr)
            return 2
    _emit_result(result, args.out)
    _write_metrics_out(result, args.metrics_out)
    payload = result.extras.get("distributed_replay", {})
    parity = payload.get("parity", {})
    if not parity.get("all", False):
        failed = [
            name for name, ok in parity.items() if name != "all" and not ok
        ]
        print(
            f"error: distributed parity failed: {failed or 'no parity data'}",
            file=sys.stderr,
        )
        return 1
    serving = payload.get("serving", {})
    if serving.get("lost", 0):
        print(
            f"error: async serving lost {serving['lost']} requests",
            file=sys.stderr,
        )
        return 1
    return _nonfinite_status(result)


def _cmd_metrics(args) -> int:
    """Render an observability dump written by ``--metrics-out``."""
    from repro.obs import (
        read_observability,
        render_metrics_diff,
        render_span_tree,
        render_summary,
        to_prometheus,
    )

    if args.diff is not None:
        if args.dump is not None:
            print(
                "error: give either one dump file or --diff A B, not both",
                file=sys.stderr,
            )
            return 2
        path_a, path_b = args.diff
        try:
            payload_a = read_observability(path_a)
            payload_b = read_observability(path_b)
        except (OSError, ValueError, json.JSONDecodeError) as error:
            print(f"error: cannot read dump: {error}", file=sys.stderr)
            return 2
        print(
            render_metrics_diff(
                payload_a, payload_b, str(path_a), str(path_b)
            )
        )
        return 0
    if args.dump is None:
        print("error: give a dump file (or --diff A B)", file=sys.stderr)
        return 2
    try:
        payload = read_observability(args.dump)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"error: cannot read {args.dump}: {error}", file=sys.stderr)
        return 2
    if args.format == "prometheus":
        print(to_prometheus(payload), end="")
    elif args.format == "spans":
        print(render_span_tree(payload))
    else:
        print(render_summary(payload))
    return 0


def _render_top(progress: dict) -> str:
    """One poll's view: latest heartbeat per source, plus rates."""
    latest: dict[str, dict] = {}
    for entry in progress.get("entries", ()):
        latest[entry["source"]] = entry
    if not latest:
        return "(no heartbeats yet)"
    rates = progress.get("rates", {})
    lines = []
    for source in sorted(latest):
        entry = latest[source]
        fields = entry["fields"]
        shown = " ".join(
            f"{key}={fields[key]:g}"
            if isinstance(fields[key], float)
            else f"{key}={fields[key]}"
            for key in sorted(fields)
        )
        line = f"  {source} #{entry['seq']}: {shown}"
        per_second = rates.get(source)
        if per_second:
            line += "  | " + " ".join(
                f"{key}/s={value:.1f}"
                for key, value in sorted(per_second.items())
            )
        lines.append(line)
    return "\n".join(lines)


def _cmd_top(args) -> int:
    """Poll a --serve-metrics endpoint's /progress route."""
    from urllib.error import URLError
    from urllib.request import urlopen

    base = args.url.rstrip("/")
    if "://" not in base:
        base = "http://" + base
    polls = 0
    try:
        while True:
            try:
                with urlopen(base + "/progress", timeout=5) as response:
                    progress = json.loads(response.read().decode("utf-8"))
            except (OSError, URLError, ValueError) as error:
                print(
                    f"error: cannot poll {base}/progress: {error}",
                    file=sys.stderr,
                )
                return 1
            print(f"repro top @ {base} (poll {polls + 1})")
            print(_render_top(progress))
            polls += 1
            if args.count and polls >= args.count:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_simulate(args) -> int:
    platform = PLATFORMS.resolve(args.platform)(args.scale)
    result = simulate_fleet(
        FleetConfig(platform=platform, duration_hours=args.hours, seed=args.seed)
    )
    count = result.store.dump_jsonl(args.out)
    truth = result.truth
    print(
        f"wrote {count} records to {args.out} "
        f"({len(truth.dimms_with_ces)} CE DIMMs, "
        f"{len(truth.predictable_ue_dimms)} predictable UEs, "
        f"{len(truth.sudden_ue_dimms)} sudden UEs)"
    )
    return 0


def _cmd_analyze(args) -> int:
    stores: dict[str, LogStore] = {}
    names = args.platform or [path.stem for path in args.logs]
    if len(names) != len(args.logs):
        print(
            f"error: got {len(names)} --platform names for {len(args.logs)} "
            f"--logs files; counts must match",
            file=sys.stderr,
        )
        return 2
    duplicates = sorted({name for name in names if names.count(name) > 1})
    if duplicates:
        print(
            f"error: duplicate platform labels {duplicates}; each --logs file "
            f"needs a distinct --platform name (or distinct file stems)",
            file=sys.stderr,
        )
        return 2
    for name, path in zip(names, args.logs):
        stores[name] = LogStore.load_jsonl(path)
    print(render_table1(table1_series(stores)) if set(stores) >= set(PLATFORM_CHOICES)
          else _render_partial_table1(stores))
    print()
    print(_render_partial_fig4(stores))
    for name, store in stores.items():
        print()
        print(render_fig5({name: fig5_panels(store)}))
    return 0


def _render_partial_table1(stores) -> str:
    stats = table1_series(stores)
    lines = ["Dataset statistics:"]
    for name, stat in stats.items():
        lines.append(
            f"  {name}: {stat.dimms_with_ces} CE DIMMs, "
            f"{stat.dimms_with_ues} UE DIMMs "
            f"(predictable {stat.predictable_share:.0%}, "
            f"sudden {stat.sudden_share:.0%})"
        )
    return "\n".join(lines)


def _render_partial_fig4(stores) -> str:
    series = fig4_series(stores)
    lines = ["Relative UE rate by fault category:"]
    for name, stats in series.items():
        row = " ".join(f"{cat}={stat.rate:.3f}" for cat, stat in stats.items())
        lines.append(f"  {name}: {row}")
    return "\n".join(lines)


def _cmd_table2(args) -> int:
    """Thin shim: ``run_table2`` itself routes through the scenario API."""
    protocol = ExperimentProtocol(
        scale=args.scale,
        duration_hours=args.hours,
        seed=args.seed,
        sampling=SamplingParams(max_samples_per_dimm=16),
    )
    models = tuple(name.strip() for name in args.models.split(",") if name.strip())
    try:
        results = run_table2(protocol, model_names=models)
    except (UnknownNameError, ValueError) as error:
        message = error.args[0] if error.args else error
        print(f"error: {message}", file=sys.stderr)
        return 2
    print(render_table2(results))
    return 0


def _cmd_lifecycle(args) -> int:
    """Thin shim: the campaign comes from the artifact cache, then Figure 6."""
    spec = RunSpec(
        scenario="single_platform",
        platforms=(args.platform,),
        scale=args.scale,
        hours=args.hours,
        seed=args.seed,
        max_samples_per_dimm=16,
        cache_dir=str(args.cache_dir) if args.cache_dir else None,
    )
    context = RunContext(spec)
    simulation = context.simulation(args.platform)
    protocol = spec.protocol()
    with tempfile.TemporaryDirectory() as tmp:
        report = run_lifecycle(simulation, protocol, Path(tmp) / "lake")
    print(f"deployed={report.deployed} ({report.gate_reason})")
    if report.deployed and report.confusion is not None:
        counts = report.confusion
        print(
            f"alarms={report.alarms} scored={report.scored} "
            f"TP={counts.tp} FP={counts.fp} FN={counts.fn} "
            f"VIRR={report.virr:.3f} drifted={report.drifted}"
        )
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "replay": _cmd_replay,
    "chaos": _cmd_chaos,
    "fleetops": _cmd_fleetops,
    "shard": _cmd_shard,
    "serve": _cmd_serve,
    "metrics": _cmd_metrics,
    "top": _cmd_top,
    "simulate": _cmd_simulate,
    "analyze": _cmd_analyze,
    "table2": _cmd_table2,
    "lifecycle": _cmd_lifecycle,
}


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
