"""Command-line interface.

Four subcommands cover the common workflows::

    python -m repro simulate  --platform intel_purley --scale 0.2 --out logs.jsonl
    python -m repro analyze   --logs logs.jsonl        # Table I / Fig 4 / Fig 5
    python -m repro table2    --scale 0.25             # algorithm comparison
    python -m repro lifecycle --platform intel_purley  # MLOps loop
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

from repro.analysis import fig4_series, fig5_panels, table1_series
from repro.evaluation.protocol import ExperimentProtocol
from repro.evaluation.reporting import render_fig4, render_fig5, render_table1, render_table2
from repro.evaluation.table2 import run_table2
from repro.features.sampling import SamplingParams
from repro.mlops.lifecycle import run_lifecycle
from repro.simulator import FleetConfig, simulate_fleet, standard_platforms
from repro.telemetry.log_store import LogStore

PLATFORM_CHOICES = ("intel_purley", "intel_whitley", "k920")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Cross-architecture DRAM failure prediction"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="simulate one platform fleet")
    simulate.add_argument("--platform", choices=PLATFORM_CHOICES, required=True)
    simulate.add_argument("--scale", type=float, default=0.2)
    simulate.add_argument("--hours", type=float, default=2160.0)
    simulate.add_argument("--seed", type=int, default=7)
    simulate.add_argument("--out", type=Path, required=True)

    analyze = sub.add_parser("analyze", help="Table I / Fig 4 / Fig 5 from logs")
    analyze.add_argument("--logs", type=Path, action="append", required=True,
                         help="JSONL log file; repeat for multiple platforms")
    analyze.add_argument("--platform", action="append", default=None,
                         help="platform name per --logs entry")

    table2 = sub.add_parser("table2", help="run the algorithm comparison")
    table2.add_argument("--scale", type=float, default=0.25)
    table2.add_argument("--hours", type=float, default=2880.0)
    table2.add_argument("--seed", type=int, default=7)
    table2.add_argument(
        "--models", default="risky_ce_pattern,random_forest,lightgbm",
        help="comma-separated model names",
    )

    lifecycle = sub.add_parser("lifecycle", help="run the MLOps lifecycle")
    lifecycle.add_argument("--platform", choices=PLATFORM_CHOICES, required=True)
    lifecycle.add_argument("--scale", type=float, default=0.2)
    lifecycle.add_argument("--hours", type=float, default=2160.0)
    lifecycle.add_argument("--seed", type=int, default=7)
    return parser


def _cmd_simulate(args) -> int:
    platform = standard_platforms(args.scale)[args.platform]
    result = simulate_fleet(
        FleetConfig(platform=platform, duration_hours=args.hours, seed=args.seed)
    )
    count = result.store.dump_jsonl(args.out)
    truth = result.truth
    print(
        f"wrote {count} records to {args.out} "
        f"({len(truth.dimms_with_ces)} CE DIMMs, "
        f"{len(truth.predictable_ue_dimms)} predictable UEs, "
        f"{len(truth.sudden_ue_dimms)} sudden UEs)"
    )
    return 0


def _cmd_analyze(args) -> int:
    stores: dict[str, LogStore] = {}
    names = args.platform or [path.stem for path in args.logs]
    if len(names) != len(args.logs):
        print("error: --platform count must match --logs count", file=sys.stderr)
        return 2
    for name, path in zip(names, args.logs):
        stores[name] = LogStore.load_jsonl(path)
    print(render_table1(table1_series(stores)) if set(stores) >= set(PLATFORM_CHOICES)
          else _render_partial_table1(stores))
    print()
    print(_render_partial_fig4(stores))
    for name, store in stores.items():
        print()
        print(render_fig5({name: fig5_panels(store)}))
    return 0


def _render_partial_table1(stores) -> str:
    stats = table1_series(stores)
    lines = ["Dataset statistics:"]
    for name, stat in stats.items():
        lines.append(
            f"  {name}: {stat.dimms_with_ces} CE DIMMs, "
            f"{stat.dimms_with_ues} UE DIMMs "
            f"(predictable {stat.predictable_share:.0%}, "
            f"sudden {stat.sudden_share:.0%})"
        )
    return "\n".join(lines)


def _render_partial_fig4(stores) -> str:
    series = fig4_series(stores)
    lines = ["Relative UE rate by fault category:"]
    for name, stats in series.items():
        row = " ".join(f"{cat}={stat.rate:.3f}" for cat, stat in stats.items())
        lines.append(f"  {name}: {row}")
    return "\n".join(lines)


def _cmd_table2(args) -> int:
    protocol = ExperimentProtocol(
        scale=args.scale,
        duration_hours=args.hours,
        seed=args.seed,
        sampling=SamplingParams(max_samples_per_dimm=16),
    )
    models = tuple(name.strip() for name in args.models.split(",") if name.strip())
    results = run_table2(protocol, model_names=models)
    print(render_table2(results))
    return 0


def _cmd_lifecycle(args) -> int:
    platform = standard_platforms(args.scale)[args.platform]
    simulation = simulate_fleet(
        FleetConfig(platform=platform, duration_hours=args.hours, seed=args.seed)
    )
    protocol = ExperimentProtocol(
        scale=args.scale, duration_hours=args.hours, seed=args.seed,
        sampling=SamplingParams(max_samples_per_dimm=16),
    )
    with tempfile.TemporaryDirectory() as tmp:
        report = run_lifecycle(simulation, protocol, Path(tmp) / "lake")
    print(f"deployed={report.deployed} ({report.gate_reason})")
    if report.deployed and report.confusion is not None:
        counts = report.confusion
        print(
            f"alarms={report.alarms} scored={report.scored} "
            f"TP={counts.tp} FP={counts.fp} FN={counts.fn} "
            f"VIRR={report.virr:.3f} drifted={report.drifted}"
        )
    return 0


_COMMANDS = {
    "simulate": _cmd_simulate,
    "analyze": _cmd_analyze,
    "table2": _cmd_table2,
    "lifecycle": _cmd_lifecycle,
}


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
