"""CI gate: the transfer matrix's diagonal must match single_platform.

Given two ``repro run ... --out`` JSON artifacts — a ``single_platform``
baseline and a ``transfer_matrix`` run over the same RunSpec knobs — this
gate fails when:

* any matrix cell is missing, unsupported-when-it-shouldn't-be, or
  carries non-finite headline metrics, or
* any diagonal cell's metrics diverge from the single-platform baseline
  (they are computed from identical artifacts and must agree exactly), or
* ``--expect-cached`` is passed and the matrix run re-simulated anything
  instead of hitting the artifact cache.

Usage::

    python benchmarks/check_transfer_diagonal.py single.json matrix.json \
        [--expect-cached]
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

#: Metrics that must agree exactly between diagonal and baseline cells.
COMPARED = ("precision", "recall", "f1", "virr", "threshold")


def _index(cells: list[dict]) -> dict[tuple[str, str, str], dict]:
    return {
        (cell["train_platform"], cell["test_platform"], cell["model"]): cell
        for cell in cells
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("single", type=Path, help="single_platform RunResult JSON")
    parser.add_argument("matrix", type=Path, help="transfer_matrix RunResult JSON")
    parser.add_argument(
        "--expect-cached",
        action="store_true",
        help="fail if the matrix run built any simulation instead of "
        "serving it from the artifact cache",
    )
    args = parser.parse_args(argv)

    single = json.loads(args.single.read_text())
    matrix = json.loads(args.matrix.read_text())
    baseline = _index(single["cells"])
    cells = _index(matrix["cells"])
    platforms = matrix["spec"]["platforms"]
    models = matrix["spec"]["models"]

    failures: list[str] = []

    for model in models:
        for train in platforms:
            for test in platforms:
                cell = cells.get((train, test, model))
                if cell is None:
                    failures.append(f"missing cell ({train} -> {test}, {model})")
                    continue
                if not cell["supported"]:
                    continue  # e.g. the Purley-only rule baseline: fine
                bad = [
                    name
                    for name in ("precision", "recall", "f1")
                    if not math.isfinite(cell[name])
                ]
                if bad:
                    failures.append(
                        f"non-finite {bad} in cell ({train} -> {test}, {model})"
                    )

    diagonal_checked = 0
    for (train, test, model), cell in cells.items():
        if train != test:
            continue
        reference = baseline.get((train, test, model))
        if reference is None:
            failures.append(f"baseline missing diagonal ({train}, {model})")
            continue
        if cell["supported"] != reference["supported"]:
            failures.append(f"supported flag diverges on ({train}, {model})")
            continue
        if not cell["supported"]:
            continue
        for name in COMPARED:
            ours, theirs = cell[name], reference[name]
            if math.isnan(ours) and math.isnan(theirs):
                continue
            if ours != theirs:
                failures.append(
                    f"diagonal ({train}, {model}) {name} diverges: "
                    f"matrix {ours!r} vs single_platform {theirs!r}"
                )
        diagonal_checked += 1

    if args.expect_cached:
        stats = matrix.get("cache_stats", {})
        for kind, label in (("simulation", "simulations"),
                            ("samples", "SampleSets")):
            built = stats.get(kind, {}).get("builds")
            if built != 0:
                failures.append(
                    f"expected zero rebuilt {label}, matrix run built {built}"
                )

    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        return 1
    print(
        f"transfer matrix ok: {len(cells)} cells, "
        f"{diagonal_checked} diagonal cells bit-identical to single_platform"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
