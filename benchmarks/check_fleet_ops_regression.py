"""CI gate: fleet-ops smoke must stay correct and fast.

Compares a freshly measured ``fleet_ops_smoke.json`` against the committed
baseline:

* **parity** — the fresh run must report zero merged-vs-single-platform
  score mismatches and ``engines_match`` (batched kernels bit-for-bit
  against the per_event reference; the benchmark itself asserts both, the
  gate re-checks the recorded artifact so a skipped assertion cannot slip
  through);
* **deterministic costs** — two merged passes in the fresh run must have
  produced identical cost summaries (the ``deterministic_costs`` flag plus
  the recorded digest).  The digest is printed for cross-run diffing but
  only the *in-job* determinism is gated — float summation order may
  legitimately differ across numpy versions;
* **throughput** — the merged-vs-sequential *speedup ratio* must not drop
  more than ``--tolerance`` below the committed baseline.  Both paths run
  on the same machine in the same process, so the ratio is robust to
  runner hardware while still catching regressions in the merged pass.

Usage::

    python benchmarks/check_fleet_ops_regression.py BASELINE.json FRESH.json \
        [--tolerance 0.30]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=Path)
    parser.add_argument("fresh", type=Path)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="maximum allowed relative speedup drop (default 0.30)",
    )
    args = parser.parse_args(argv)

    baseline = json.loads(args.baseline.read_text())["fleet_ops"]
    fresh = json.loads(args.fresh.read_text())["fleet_ops"]
    if baseline.get("scale") != fresh.get("scale"):
        print(
            f"scale mismatch: baseline {baseline.get('scale')} vs "
            f"fresh {fresh.get('scale')} — speedups are not comparable"
        )
        return 1

    parity = fresh.get("parity", {})
    print(
        f"parity: {parity.get('scores_checked', 0)} scores checked over "
        f"{parity.get('platforms_checked', 0)} platforms, "
        f"{parity.get('mismatches', '?')} mismatches"
    )
    if parity.get("mismatches", 1) != 0:
        print("merged-fleet scores diverged from the single-platform path")
        return 1
    if "engines_match" in parity and parity["engines_match"] is not True:
        print("batched fleet engine diverged from the per_event reference")
        return 1

    if not fresh.get("deterministic_costs", False):
        print("fleet cost summary was not deterministic across merged runs")
        return 1
    print(
        f"cost digest: fresh {fresh.get('cost_digest')} "
        f"(baseline {baseline.get('cost_digest')})"
    )

    old = float(baseline["speedup"])
    new = float(fresh["speedup"])
    drop = (old - new) / old
    status = "FAIL" if drop > args.tolerance else "ok"
    print(
        f"fleet ops: baseline {old:.2f}x fresh {new:.2f}x "
        f"drop {drop:+.1%} [{status}]"
    )
    if drop > args.tolerance:
        print(f"fleet-ops speedup regressed > {args.tolerance:.0%}")
        return 1
    print("fleet-ops speedup within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
