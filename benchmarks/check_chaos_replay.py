"""CI gate: the chaos_replay sweep holds its fault-accounting invariants.

Given a ``repro chaos ... --out`` JSON artifact (and optionally a clean
``repro replay ... --out`` baseline over the same RunSpec knobs), this
gate fails when:

* any (platform, model) sweep has fewer than ``--min-points`` curve
  points, or the curve's rates are not strictly increasing;
* any point's dead-letter count differs from its injected-corruption
  count (every corruption is detectable by construction — a mismatch
  means quarantine missed or double-counted records);
* the clean point (fault rate 0.0) saw any fault, dead letter, or
  rejected record — the injector-disabled run must be pristine;
* a clean ``--clean`` baseline is given and the clean point's alarm
  summary, scored count, or event count diverge from it (the
  injector-disabled bit-for-bit parity guarantee);
* any point's headline alarm metrics are non-finite.

Usage::

    python benchmarks/check_chaos_replay.py chaos.json \
        [--clean streaming.json] [--min-points 3]
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path


def _sweeps(artifact: dict):
    for platform, models in artifact["extras"]["chaos_replay"].items():
        for model, payload in models.items():
            yield platform, model, payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("chaos", type=Path, help="chaos_replay RunResult JSON")
    parser.add_argument(
        "--clean",
        type=Path,
        default=None,
        help="streaming_replay RunResult JSON over the same knobs; the "
        "rate-0.0 point must match it bit-for-bit",
    )
    parser.add_argument("--min-points", type=int, default=3)
    args = parser.parse_args(argv)

    artifact = json.loads(args.chaos.read_text())
    clean_reports = {}
    if args.clean is not None:
        baseline = json.loads(args.clean.read_text())
        for platform, models in baseline["extras"]["streaming_replay"].items():
            for model, payload in models.items():
                clean_reports[(platform, model)] = payload["streaming"]

    failures: list[str] = []
    points_checked = 0
    for platform, model, payload in _sweeps(artifact):
        label = f"{platform}/{model}"
        curve = payload["curve"]
        rates = [point["fault_rate"] for point in curve]
        if len(curve) < args.min_points:
            failures.append(
                f"{label}: only {len(curve)} sweep points "
                f"(need >= {args.min_points})"
            )
        if rates != sorted(set(rates)):
            failures.append(f"{label}: rates not strictly increasing: {rates}")
        for point in curve:
            points_checked += 1
            rate = point["fault_rate"]
            tag = f"{label} rate={rate}"
            injected = point["injection"]["corrupted"]
            if point["dead_letter"] != injected:
                failures.append(
                    f"{tag}: dead_letter={point['dead_letter']} != "
                    f"injected corruptions={injected}"
                )
            if point["health"]["rejected_events"] != injected:
                failures.append(
                    f"{tag}: quarantined {point['health']['rejected_events']}"
                    f" records, expected exactly {injected}"
                )
            bad = [
                name
                for name in ("precision", "recall", "f1")
                if not math.isfinite(point["alarms"][name])
            ]
            if bad:
                failures.append(f"{tag}: non-finite alarm metrics {bad}")
            if rate == 0.0:
                injection = point["injection"]
                faults = {
                    name: injection[name]
                    for name in (
                        "dropped", "duplicated", "delayed", "corrupted",
                        "outage_dropped",
                    )
                    if injection[name]
                }
                if faults or point["dead_letter"]:
                    failures.append(
                        f"{tag}: clean point saw faults {faults}, "
                        f"dead_letter={point['dead_letter']}"
                    )
                reference = clean_reports.get((platform, model))
                if reference is not None:
                    for name in ("alarms", "scored", "events"):
                        ours = point["report"][name]
                        theirs = reference[name]
                        if ours != theirs:
                            failures.append(
                                f"{tag}: clean point {name} diverges from "
                                f"streaming baseline: {ours!r} vs {theirs!r}"
                            )
        if args.clean is not None and 0.0 not in rates:
            failures.append(f"{label}: --clean given but no rate-0.0 point")

    if points_checked == 0:
        failures.append("no chaos_replay sweep points found in the artifact")

    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        return 1
    print(
        f"chaos replay ok: {points_checked} sweep points, every dead-letter "
        f"count equals its injected corruption count"
        + (
            "; clean point bit-identical to the streaming baseline"
            if clean_reports
            else ""
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
