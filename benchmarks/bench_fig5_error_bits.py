"""E3 — Figure 5: error-bit DQ/beat analysis for the Intel platforms."""

from conftest import write_result

from repro.analysis import fig5_panels, interval_effect_size, peak_value
from repro.evaluation.reporting import render_fig5
from repro.simulator.calibration import FIG5_PEAKS


def test_fig5_error_bit_patterns(benchmark, paper_stores):
    def run():
        return {
            platform: fig5_panels(paper_stores[platform])
            for platform in ("intel_purley", "intel_whitley")
        }

    panels = benchmark.pedantic(run, iterations=1, rounds=1)
    write_result("fig5.txt", render_fig5(panels))

    purley = panels["intel_purley"]
    whitley = panels["intel_whitley"]
    assert peak_value(purley["dq_count"]) == FIG5_PEAKS["intel_purley"]["dq_count_peak"]
    assert (
        peak_value(purley["beat_interval"])
        == FIG5_PEAKS["intel_purley"]["beat_interval_peak"]
    )
    assert (
        peak_value(whitley["dq_count"]) == FIG5_PEAKS["intel_whitley"]["dq_count_peak"]
    )
    assert (
        peak_value(whitley["beat_count"])
        == FIG5_PEAKS["intel_whitley"]["beat_count_peak"]
    )
    # Finding 3: intervals matter on Purley, not on Whitley.
    assert interval_effect_size(purley) > interval_effect_size(whitley)
