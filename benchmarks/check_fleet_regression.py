"""CI gate: fail when the fleet engine's speedup regresses > tolerance.

Compares a freshly measured ``pipeline_throughput_fleet_smoke.json``
against the committed baseline.  The gate diffs the fleet-vs-batch
*speedup ratio* (not absolute seconds): both engines run on the same
machine in the same process, so the ratio is robust to runner hardware
while still catching real regressions in the fleet pass.

Usage::

    python benchmarks/check_fleet_regression.py BASELINE.json FRESH.json \
        [--tolerance 0.30]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=Path)
    parser.add_argument("fresh", type=Path)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="maximum allowed relative speedup drop (default 0.30)",
    )
    args = parser.parse_args(argv)

    baseline = json.loads(args.baseline.read_text())["fleet_vs_batch"]
    fresh = json.loads(args.fresh.read_text())["fleet_vs_batch"]
    if baseline.get("scale") != fresh.get("scale"):
        print(
            f"scale mismatch: baseline {baseline.get('scale')} vs "
            f"fresh {fresh.get('scale')} — speedups are not comparable"
        )
        return 1

    failures = []
    for platform, row in baseline.items():
        if not isinstance(row, dict):  # skip the "scale" metadata field
            continue
        old = float(row["speedup"])
        new = float(fresh[platform]["speedup"])
        drop = (old - new) / old
        status = "FAIL" if drop > args.tolerance else "ok"
        print(
            f"{platform}: baseline {old:.2f}x fresh {new:.2f}x "
            f"drop {drop:+.1%} [{status}]"
        )
        if drop > args.tolerance:
            failures.append(platform)

    if failures:
        print(
            f"fleet speedup regressed > {args.tolerance:.0%} on: "
            + ", ".join(failures)
        )
        return 1
    print("fleet speedup within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
