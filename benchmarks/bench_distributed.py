"""P8 — Distributed tier: sharded worker replay + async batched serving.

Replays the whole three-platform fleet two ways and *gates the contract*
before timing anything:

* **single-process baseline** — one coherent-flush
  :class:`~repro.fleetops.engine.FleetReplayEngine` pass with mitigation
  applied in canonical incident order (the reference the coordinator
  must reproduce);
* **distributed** — :class:`~repro.distributed.coordinator
  .ReplayCoordinator` over DIMM shards, swept across worker counts.

Gates recorded in the artifact (the CI smoke job re-checks them):

* **parity** — canonical score logs, settled per-platform and fleet cost
  dicts, and bus counts from the 2-worker run are bit-for-bit the
  baseline's;
* **determinism** — two coordinator runs with the same seed settle to
  the same cost digest;
* **zero lost** — an async-serving concurrency sweep over one platform's
  stream answers every submitted request (shedding degrades, never
  drops).

The headline throughput number is ``best_ratio``: the best swept worker
throughput over the single-process baseline, both measured in the same
job so the ratio is robust to runner hardware.  ``scale >= 1.0`` writes
``results/distributed.json``; other scales write the ``_smoke`` variant
the CI regression gate diffs.

Run with::

    pytest benchmarks/bench_distributed.py --distributed [--bench-scale S]
"""

from __future__ import annotations

import hashlib
import itertools
import json

import numpy as np
import pytest

from conftest import SEED, best_of, write_result
from repro.distributed.coordinator import ReplayCoordinator, apply_policy
from repro.distributed.service import serve_stream
from repro.features.labeling import LabelingParams
from repro.features.pipeline import FeaturePipeline
from repro.fleetops.cost import CostModel, combine_summaries
from repro.fleetops.engine import FleetReplayEngine, ServingAssignment
from repro.fleetops.policy import ActionBudget, PolicyEngine
from repro.fleetops.stream import merge_fleet_streams
from repro.mlops.feature_store import FeatureStore
from repro.mlops.model_registry import ModelRegistry
from repro.mlops.serving import AlarmSystem, OnlinePredictionService
from repro.simulator import simulate_study
from repro.telemetry.log_store import iter_stream

THRESHOLD = 0.985
DURATION_HOURS = 2880.0
SERVE_RECORDS = 2000
CONCURRENCY_SWEEP = (1, 8, 32)


class _EchoModel:
    """Deterministic feature-dependent scores; pickles into workers."""

    def predict_proba(self, X) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        return 1.0 / (1.0 + np.exp(-X.sum(axis=1) / 100.0))


def _assignments(study, pipelines):
    model = _EchoModel()
    return {
        name: ServingAssignment(
            platform=name,
            model_name="echo",
            train_platform=name,
            model=model,
            threshold=THRESHOLD,
            pipeline=pipelines[name],
            configs=simulation.store.configs,
            live_from_hour=0.6 * simulation.duration_hours,
        )
        for name, simulation in study.items()
    }


def _make_policy():
    return PolicyEngine(budget=ActionBudget(), seed=SEED)


def _run_baseline(stores, assignments):
    """Coherent-flush single pass + canonical mitigation/settlement."""
    engine = FleetReplayEngine(
        assignments,
        labeling=LabelingParams(),
        policy=None,
        cost_model=CostModel(),
        rescore_interval_hours=0.0,
        batch_size=256,
        engine="batched",
        collect_scores=True,
        coherent_flush=True,
    )
    stream = merge_fleet_streams(stores, decode_payloads=False)
    report = engine.replay(stream, stores)
    policy = _make_policy()
    alarms = {
        name: runtime.alarms for name, runtime in engine.runtimes.items()
    }
    apply_policy(policy, alarms, stream.end_hours)
    costs, summaries = {}, []
    for name, manager in alarms.items():
        summary, _ = CostModel().settle(
            name, manager, policy, assignments[name].live_from_hour
        )
        costs[name] = summary.to_dict()
        summaries.append(summary)
    return {
        "report": report,
        "score_logs": {
            name: sorted(log, key=lambda row: (row[1], row[0]))
            for name, log in engine.score_logs.items()
        },
        "costs": costs,
        "fleet_cost": combine_summaries(summaries).to_dict(),
        "bus_counts": report.bus_counts,
    }


def _run_distributed(stores, assignments, workers):
    coordinator = ReplayCoordinator(
        assignments,
        policy=_make_policy(),
        cost_model=CostModel(),
        workers=workers,
        rescore_interval_hours=0.0,
        batch_size=256,
        engine="batched",
    )
    report = coordinator.replay(stores)
    return coordinator, report


def _cost_digest(costs, fleet_cost) -> str:
    body = json.dumps(
        {"costs": costs, "fleet_cost": fleet_cost}, sort_keys=True
    )
    return hashlib.sha256(body.encode("utf-8")).hexdigest()[:16]


def _serving_service(store, assignment):
    registry = ModelRegistry()
    version = registry.register(
        assignment.platform, assignment.model_name, assignment.model,
        float(assignment.threshold), {},
    )
    registry.promote_to_staging(version)
    registry.promote_to_production(version)
    service = OnlinePredictionService(
        FeatureStore(assignment.pipeline),
        registry,
        AlarmSystem(),
        assignment.platform,
    )
    for dimm_id, config in store.configs.items():
        service.register_config(dimm_id, config)
    return service


def test_distributed_tier(request):
    """--distributed mode: sharded replay parity + async serving sweep."""
    if not request.config.getoption("--distributed"):
        pytest.skip("run with --distributed to benchmark the tier")
    scale = float(request.config.getoption("--bench-scale"))
    study = simulate_study(
        scale=scale, seed=SEED, duration_hours=DURATION_HOURS
    )
    stores = {name: sim.store for name, sim in study.items()}
    pipelines = {}
    for name, simulation in study.items():
        pipeline = FeaturePipeline()
        pipeline.fit(simulation.store)
        pipelines[name] = pipeline
    assignments = _assignments(study, pipelines)

    # -- correctness gates (untimed) ---------------------------------------
    baseline = _run_baseline(stores, assignments)
    coordinator, dist_report = _run_distributed(stores, assignments, 2)
    mismatches = sum(
        coordinator.score_logs[name] != baseline["score_logs"][name]
        for name in stores
    )
    assert mismatches == 0, "sharded replay scores diverged from baseline"
    costs_match = (
        dist_report.costs == baseline["costs"]
        and dist_report.fleet_cost == baseline["fleet_cost"]
    )
    assert costs_match, "settled costs diverged from the baseline"
    assert dist_report.bus_counts == baseline["bus_counts"]
    digest = _cost_digest(dist_report.costs, dist_report.fleet_cost)
    assert digest == _cost_digest(
        baseline["costs"], baseline["fleet_cost"]
    )
    _, second_report = _run_distributed(stores, assignments, 2)
    deterministic = (
        _cost_digest(second_report.costs, second_report.fleet_cost)
        == digest
    )
    assert deterministic, "distributed cost settlement is not deterministic"

    # -- replay timing -----------------------------------------------------
    rounds = 3 if scale >= 1.0 else 2
    baseline_seconds, _ = best_of(
        rounds, lambda: _run_baseline(stores, assignments)
    )
    events = dist_report.events
    worker_sweep = []
    sweep = (1, 2, 4) if scale >= 1.0 else (1, 2)
    for workers in sweep:
        seconds, (_, timed) = best_of(
            rounds, lambda w=workers: _run_distributed(stores, assignments, w)
        )
        assert timed.events == events
        worker_sweep.append(
            {
                "workers": workers,
                "seconds": round(seconds, 3),
                "events_per_second": round(events / seconds),
                "ratio_vs_single_process": round(
                    baseline_seconds / seconds, 3
                ),
            }
        )
    best_ratio = max(row["ratio_vs_single_process"] for row in worker_sweep)

    # -- async serving sweep -----------------------------------------------
    serve_platform = sorted(stores)[0]
    records = list(
        itertools.islice(iter_stream(stores[serve_platform]), SERVE_RECORDS)
    )
    serving_sweep, lost_total = [], 0
    for concurrency in CONCURRENCY_SWEEP:
        service = _serving_service(
            stores[serve_platform], assignments[serve_platform]
        )
        _, slo = serve_stream(service, records, concurrency=concurrency)
        lost_total += slo["lost"]
        serving_sweep.append(
            {
                "concurrency": concurrency,
                "records": len(records),
                "scored": slo["scored"],
                "batches": slo["batches"],
                "mean_batch": slo["mean_batch"],
                "throughput_rps": slo["throughput_rps"],
                "p50_ms": slo["p50_ms"],
                "p95_ms": slo["p95_ms"],
                "p99_ms": slo["p99_ms"],
                "shed": slo["shed"],
                "fallbacks": slo["fallbacks"],
                "lost": slo["lost"],
            }
        )
    assert lost_total == 0, "async serving dropped requests"

    result = {
        "scale": scale,
        "platforms": sorted(study),
        "events": events,
        "scored": dist_report.scored,
        "baseline_seconds": round(baseline_seconds, 3),
        "baseline_events_per_second": round(events / baseline_seconds),
        "worker_sweep": worker_sweep,
        "best_ratio": best_ratio,
        "parity": {
            "platforms_checked": len(stores),
            "scores_checked": sum(
                len(log) for log in baseline["score_logs"].values()
            ),
            "mismatches": mismatches,
            "costs_match": costs_match,
        },
        "deterministic_costs": deterministic,
        "cost_digest": digest,
        "serving": {
            "platform": serve_platform,
            "records": len(records),
            "lost": lost_total,
            "sweep": serving_sweep,
        },
    }

    artifact = (
        "distributed.json" if scale >= 1.0 else "distributed_smoke.json"
    )
    write_result(artifact, json.dumps({"distributed": result}, indent=2))
