"""Shared benchmark fixtures.

Two cached studies: ``paper_study`` (full paper-shape scale) drives the
fault-analysis artifacts (Table I, Figures 4-5, findings); ``ml_study``
(half scale) drives the ML harnesses, which train four algorithms per
platform.  Rendered artifacts are written to ``benchmarks/results/``.
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from repro.evaluation.protocol import ExperimentProtocol
from repro.features.sampling import SamplingParams
from repro.simulator import simulate_study

RESULTS_DIR = Path(__file__).parent / "results"
RESULTS_DIR.mkdir(exist_ok=True)

SEED = 7


def pytest_addoption(parser):
    parser.addoption(
        "--fleet",
        action="store_true",
        default=False,
        help="run the fleet-extraction benchmark (writes "
        "pipeline_throughput_fleet*.json)",
    )
    parser.addoption(
        "--bench-scale",
        type=float,
        default=1.0,
        help="fleet simulation scale for the --fleet/--streaming benchmarks "
        "(1.0 = paper shape; CI uses a smaller smoke scale)",
    )
    parser.addoption(
        "--streaming",
        action="store_true",
        default=False,
        help="run the streaming-replay benchmark (writes "
        "streaming_replay*.json)",
    )
    parser.addoption(
        "--fleet-ops",
        action="store_true",
        default=False,
        help="run the fleet-operations benchmark (writes fleet_ops*.json)",
    )
    parser.addoption(
        "--distributed",
        action="store_true",
        default=False,
        help="run the distributed-tier benchmark (writes "
        "distributed*.json)",
    )
    parser.addoption(
        "--observability",
        action="store_true",
        default=False,
        help="run the observability-overhead benchmark (writes "
        "observability*.json)",
    )


def write_result(name: str, content: str) -> None:
    (RESULTS_DIR / name).write_text(content + "\n", encoding="utf-8")
    print("\n" + content)


def best_of(n_rounds: int, fn):
    """Best-of-N wall-clock timing (the min damps scheduler noise)."""
    best, result = float("inf"), None
    for _ in range(n_rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.fixture(scope="session")
def paper_study():
    """Paper-shape fleet: the analysis artifacts are computed on this."""
    return simulate_study(scale=1.0, seed=SEED, duration_hours=2880.0)


@pytest.fixture(scope="session")
def paper_stores(paper_study):
    return {name: sim.store for name, sim in paper_study.items()}


@pytest.fixture(scope="session")
def ml_protocol():
    return ExperimentProtocol(
        scale=0.5,
        duration_hours=2880.0,
        seed=SEED,
        sampling=SamplingParams(max_samples_per_dimm=20),
    )


@pytest.fixture(scope="session")
def ml_study(ml_protocol):
    return simulate_study(
        scale=ml_protocol.scale, seed=SEED, duration_hours=ml_protocol.duration_hours
    )
