"""P2 — Feature-engine throughput: batch, fleet and streaming replay.

Measures the hot paths the vectorized engine rebuilt:

* ``FeaturePipeline.build_samples`` — batched extraction vs the retained
  per-sample reference path, at paper scale (``scale=1.0``).  The
  acceptance bar is a >= 5x speedup with bit-identical matrices.
* ``--fleet`` mode — the cross-DIMM fleet engine vs the per-DIMM batch
  path: ``pytest benchmarks/bench_pipeline_throughput.py --fleet
  [--bench-scale S]``.  Acceptance bar at ``scale=1.0``: >= 3x on every
  platform, bit-identical sample sets
  (``results/pipeline_throughput_fleet.json``; other scales write the
  ``_smoke`` variant the CI regression gate diffs against).
* Streaming replay — CEs/sec through ``OnlinePredictionService`` on
  amortised-O(1) ``AppendableDimmHistory`` state vs the old
  rebuild-from-records approach (quadratic per DIMM).

Writes JSON perf artifacts to ``benchmarks/results/``.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from conftest import SEED, best_of, write_result
from repro.features.pipeline import FeaturePipeline
from repro.features.windows import DimmHistory
from repro.mlops.feature_store import FeatureStore
from repro.mlops.model_registry import ModelRegistry
from repro.mlops.serving import AlarmSystem, OnlinePredictionService
from repro.telemetry.log_store import iter_stream
from repro.telemetry.records import CERecord, MemEventRecord


class _ConstantModel:
    """Fixed-score model: replay cost is pure feature extraction."""

    def predict_proba(self, X) -> np.ndarray:
        return np.zeros(np.asarray(X).shape[0])


def _deploy_constant_model(platform: str) -> ModelRegistry:
    registry = ModelRegistry()
    version = registry.register(
        platform, "const", _ConstantModel(), threshold=0.99, metrics={"f1": 0.9}
    )
    registry.promote_to_staging(version)
    registry.promote_to_production(version)
    return registry




def test_batch_extraction_speedup(paper_study):
    report: dict[str, dict] = {}
    for platform, simulation in paper_study.items():
        store = simulation.store
        pipeline = FeaturePipeline()
        pipeline.fit(store)

        batch_seconds, batch_samples = best_of(
            3,
            lambda: pipeline.build_samples(
                store, platform, simulation.duration_hours, engine="batch"
            ),
        )
        reference_seconds, reference_samples = best_of(
            2,
            lambda: pipeline.build_samples(
                store, platform, simulation.duration_hours,
                engine="per_sample",
            ),
        )
        assert np.array_equal(batch_samples.X, reference_samples.X)
        assert np.array_equal(batch_samples.y, reference_samples.y)

        report[platform] = {
            "samples": len(batch_samples),
            "batch_seconds": round(batch_seconds, 4),
            "per_sample_seconds": round(reference_seconds, 4),
            "speedup": round(reference_seconds / batch_seconds, 2),
            "samples_per_second": round(len(batch_samples) / batch_seconds),
        }

    # Acceptance bar: >= 5x on the paper-shape platform at scale=1.0.
    assert report["intel_purley"]["speedup"] >= 5.0, report
    for platform, row in report.items():
        assert row["speedup"] >= 3.0, (platform, row)

    write_result(
        "pipeline_throughput_batch.json",
        json.dumps({"build_samples_scale_1.0": report}, indent=2),
    )


def test_fleet_extraction_speedup(request):
    """--fleet mode: one cross-DIMM pass vs the per-DIMM batch engine."""
    if not request.config.getoption("--fleet"):
        pytest.skip("run with --fleet to benchmark the fleet engine")
    from repro.simulator import simulate_study

    scale = float(request.config.getoption("--bench-scale"))
    study = simulate_study(scale=scale, seed=SEED, duration_hours=2880.0)

    # Sub-paper (smoke) scales time in milliseconds: take the best of more
    # rounds so the CI regression gate sees scheduler noise damped out.
    fleet_rounds, batch_rounds = (5, 3) if scale >= 1.0 else (11, 7)

    report: dict[str, dict] = {"scale": scale}
    for platform, simulation in study.items():
        store = simulation.store
        pipeline = FeaturePipeline()
        pipeline.fit(store)

        fleet_seconds, fleet_samples = best_of(
            fleet_rounds,
            lambda: pipeline.build_samples(
                store, platform, simulation.duration_hours, engine="fleet"
            ),
        )
        batch_seconds, batch_samples = best_of(
            batch_rounds,
            lambda: pipeline.build_samples(
                store, platform, simulation.duration_hours, engine="batch"
            ),
        )
        assert np.array_equal(fleet_samples.X, batch_samples.X)
        assert np.array_equal(fleet_samples.y, batch_samples.y)
        assert list(fleet_samples.dimm_ids) == list(batch_samples.dimm_ids)

        report[platform] = {
            "samples": len(fleet_samples),
            "fleet_seconds": round(fleet_seconds, 4),
            "batch_seconds": round(batch_seconds, 4),
            "speedup": round(batch_seconds / fleet_seconds, 2),
            "samples_per_second": round(len(fleet_samples) / fleet_seconds),
        }

    if scale >= 1.0:
        # Acceptance bar: >= 3x over the per-DIMM batch path, everywhere.
        for platform in study:
            assert report[platform]["speedup"] >= 3.0, (platform, report)
        artifact = "pipeline_throughput_fleet.json"
    else:
        artifact = "pipeline_throughput_fleet_smoke.json"
    write_result(
        artifact, json.dumps({"fleet_vs_batch": report}, indent=2)
    )


def _replay_incremental(records, service) -> int:
    scored_records = 0
    for record in records:
        service.observe(record)
        scored_records += 1
    return scored_records


def _replay_rebuild(records, feature_store, configs, model) -> int:
    """The pre-engine serving loop: rebuild every array view per CE."""
    ces: dict[str, list] = {}
    events: dict[str, list] = {}
    processed = 0
    for record in records:
        processed += 1
        if isinstance(record, MemEventRecord):
            events.setdefault(record.dimm_id, []).append(record)
            continue
        if not isinstance(record, CERecord):
            continue
        dimm_ces = ces.setdefault(record.dimm_id, [])
        dimm_ces.append(record)
        if len(dimm_ces) < 2:
            continue
        config = configs.get(record.dimm_id)
        if config is None:
            continue
        history = DimmHistory.from_records(
            record.dimm_id, dimm_ces, events.get(record.dimm_id, [])
        )
        features = feature_store.serve_online(
            history, config, record.timestamp_hours
        )
        model.predict_proba(features.reshape(1, -1))
    return processed


def test_streaming_replay_throughput(paper_study):
    simulation = paper_study["intel_purley"]
    store = simulation.store
    pipeline = FeaturePipeline()
    pipeline.fit(store)
    feature_store = FeatureStore(pipeline)
    registry = _deploy_constant_model("intel_purley")
    configs = store.configs

    records = list(iter_stream(store))
    ce_count = sum(1 for r in records if isinstance(r, CERecord))

    service = OnlinePredictionService(
        feature_store, registry, AlarmSystem(), "intel_purley",
        rescore_interval_hours=0.0,
    )
    for dimm_id, config in configs.items():
        service.register_config(dimm_id, config)
    start = time.perf_counter()
    _replay_incremental(records, service)
    incremental_seconds = time.perf_counter() - start
    assert service.scored > 0

    # The rebuild baseline is quadratic per DIMM; cap its workload and
    # normalise to CEs/sec over what it actually processed.
    cap = min(len(records), 30_000)
    start = time.perf_counter()
    _replay_rebuild(records[:cap], feature_store, configs, _ConstantModel())
    rebuild_seconds = time.perf_counter() - start
    rebuild_ces = sum(
        1 for r in records[:cap] if isinstance(r, CERecord)
    )

    incremental_rate = ce_count / incremental_seconds
    rebuild_rate = rebuild_ces / rebuild_seconds
    report = {
        "records": len(records),
        "ces": ce_count,
        "incremental_seconds": round(incremental_seconds, 3),
        "incremental_ces_per_second": round(incremental_rate),
        "rebuild_ces_scored": rebuild_ces,
        "rebuild_seconds": round(rebuild_seconds, 3),
        "rebuild_ces_per_second": round(rebuild_rate),
        "replay_speedup": round(incremental_rate / rebuild_rate, 2),
    }
    write_result(
        "pipeline_throughput_streaming.json",
        json.dumps({"streaming_replay": report}, indent=2),
    )
    assert incremental_rate > rebuild_rate


def test_streaming_long_history_scaling(paper_study):
    """One chatty DIMM: per-CE cost stays flat instead of growing with n."""
    simulation = paper_study["intel_purley"]
    store = simulation.store
    pipeline = FeaturePipeline()
    pipeline.fit(store)
    feature_store = FeatureStore(pipeline)
    registry = _deploy_constant_model("intel_purley")
    dimm_id = store.dimm_ids_with_ces()[0]
    config = store.config_for(dimm_id)

    n_ces = 3000
    records = [
        CERecord(
            timestamp_hours=1.0 + 0.01 * i, server_id="bench-server",
            dimm_id="bench-dimm", rank=0, bank=i % 4, row=i % 64,
            column=i % 32, devices=(i % 4,), dq_count=1 + i % 2,
            beat_count=1 + i % 3, dq_interval=0, beat_interval=i % 5,
            error_bit_count=1 + i % 4,
        )
        for i in range(n_ces)
    ]

    service = OnlinePredictionService(
        feature_store, registry, AlarmSystem(), "intel_purley",
        rescore_interval_hours=0.0,
    )
    service.register_config("bench-dimm", config)
    start = time.perf_counter()
    _replay_incremental(records, service)
    incremental_seconds = time.perf_counter() - start

    start = time.perf_counter()
    _replay_rebuild(
        records, feature_store, {"bench-dimm": config}, _ConstantModel()
    )
    rebuild_seconds = time.perf_counter() - start

    report = {
        "ces": n_ces,
        "incremental_seconds": round(incremental_seconds, 3),
        "rebuild_seconds": round(rebuild_seconds, 3),
        "speedup": round(rebuild_seconds / incremental_seconds, 2),
    }
    write_result(
        "pipeline_throughput_long_history.json",
        json.dumps({"streaming_long_history": report}, indent=2),
    )
    assert rebuild_seconds > incremental_seconds
