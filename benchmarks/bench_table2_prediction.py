"""E4 — Table II: algorithm performance across platforms.

Trains all four algorithms (Risky CE Pattern, Random Forest, LightGBM-style
GBDT, FT-Transformer) per platform and regenerates the Table II grid.
Shape assertions check the claims our substitution is expected to
preserve; absolute values are recorded for EXPERIMENTS.md.
"""

from conftest import write_result

from repro.evaluation.reporting import render_model_result_details, render_table2
from repro.evaluation.table2 import run_table2

MODELS = ("risky_ce_pattern", "random_forest", "lightgbm", "ft_transformer")


def test_table2_algorithm_comparison(benchmark, ml_study, ml_protocol):
    results = benchmark.pedantic(
        run_table2,
        args=(ml_protocol,),
        kwargs={"simulations": ml_study, "model_names": MODELS},
        iterations=1,
        rounds=1,
    )
    write_result(
        "table2.txt",
        render_table2(results) + "\n\n" + render_model_result_details(results),
    )

    # The rule baseline only exists for Purley (paper: X elsewhere).
    assert not results.result("risky_ce_pattern", "intel_whitley").supported
    assert not results.result("risky_ce_pattern", "k920").supported

    # ML models beat the rule-based baseline on Purley (paper: +15% F1).
    baseline_f1 = results.result("risky_ce_pattern", "intel_purley").f1
    best_ml_f1 = max(
        results.result(model, "intel_purley").f1
        for model in ("random_forest", "lightgbm")
    )
    assert best_ml_f1 > baseline_f1

    # Every supported cell produces sane metrics.
    for model in MODELS:
        for platform, cell in results.cells[model].items():
            if cell.supported:
                assert 0.0 <= cell.precision <= 1.0
                assert 0.0 <= cell.recall <= 1.0
                assert cell.test_dimms > 0
