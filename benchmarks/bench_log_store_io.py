"""P2 — LogStore JSONL persistence throughput.

The bulk loader parses the whole file with one ``json.loads`` call and
feeds the columnar store one batch per record kind
(:meth:`LogStore.ingest_bulk`); the baseline is the pre-engine loop — one
``json.loads`` and one per-record ``extend`` per line.  Both paths build
the same store (asserted via the fleet view); the artifact records the
measured speedup.
"""

from __future__ import annotations

import json

import numpy as np

from conftest import best_of, write_result
from repro.telemetry.log_store import LogStore
from repro.telemetry.records import record_from_dict


def _load_per_line(path) -> LogStore:
    """The PR-1 loader: per-line parse, per-record ingestion."""
    store = LogStore()
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                store.extend([record_from_dict(json.loads(line))])
    return store




def test_jsonl_bulk_load_speedup(paper_study, tmp_path):
    store = paper_study["intel_purley"].store
    path = tmp_path / "campaign.jsonl"
    dump_seconds, record_count = best_of(2, lambda: store.dump_jsonl(path))

    bulk_seconds, bulk_store = best_of(3, lambda: LogStore.load_jsonl(path))
    per_line_seconds, per_line_store = best_of(2, lambda: _load_per_line(path))

    # Both loaders reconstruct the identical store.
    a, b = bulk_store.fleet_arrays(), per_line_store.fleet_arrays()
    assert a.dimm_ids == b.dimm_ids
    assert np.array_equal(a.times, b.times)
    assert np.array_equal(a.ue_hours, b.ue_hours, equal_nan=True)
    assert len(bulk_store) == len(per_line_store)

    speedup = per_line_seconds / bulk_seconds
    report = {
        "records": record_count,
        "dump_seconds": round(dump_seconds, 3),
        "bulk_load_seconds": round(bulk_seconds, 3),
        "per_line_load_seconds": round(per_line_seconds, 3),
        "load_speedup": round(speedup, 2),
        "records_per_second": round(record_count / bulk_seconds),
    }
    write_result(
        "log_store_io.json", json.dumps({"jsonl_round_trip": report}, indent=2)
    )
    assert speedup > 1.0, report
