"""A3 — VIRR sensitivity to the cold-migration fraction y_c.

Reproduces the paper's break-even discussion: VIRR turns negative once y_c
exceeds the model's precision.
"""

from conftest import write_result

from repro.evaluation.ablation import virr_sensitivity
from repro.evaluation.experiment import PlatformExperiment


def test_virr_sensitivity(benchmark, ml_study, ml_protocol):
    experiment = PlatformExperiment.prepare(ml_study["intel_purley"], ml_protocol)
    result = experiment.run_model("lightgbm")

    rows = benchmark.pedantic(
        virr_sensitivity, args=(result,), iterations=1, rounds=3
    )
    lines = [
        "A3: VIRR vs y_c (Intel Purley LightGBM operating point: "
        f"P={result.precision:.2f}, R={result.recall:.2f})"
    ]
    for row in rows:
        lines.append(f"  y_c={row.y_c:.2f}  VIRR={row.virr:+.3f}")
    write_result("virr_sensitivity.txt", "\n".join(lines))

    values = [row.virr for row in rows]
    assert values == sorted(values, reverse=True)
    if result.recall > 0:
        # Break-even: VIRR at y_c above the precision must be negative.
        above = [row for row in rows if row.y_c > result.precision]
        assert all(row.virr < 0 for row in above)
