"""CI gate: the distributed-tier smoke must stay correct and fast.

Compares a freshly measured ``distributed_smoke.json`` against the
committed baseline:

* **parity** — the fresh run must report zero score-log mismatches and
  ``costs_match`` (sharded replay bit-for-bit against the coherent-flush
  single-process pass; the benchmark itself asserts this, the gate
  re-checks the recorded artifact so a skipped assertion cannot slip
  through);
* **determinism** — two coordinator runs in the fresh job must have
  settled to the same cost digest (``deterministic_costs``).  The digest
  is printed for cross-run diffing but only in-job determinism is gated;
* **zero lost** — every async-serving sweep point must have answered all
  submitted requests (``serving.lost == 0``);
* **throughput** — the best distributed-vs-single-process *ratio* must
  not drop more than ``--tolerance`` below the committed baseline.  Both
  paths run on the same machine in the same process tree, so the ratio
  is robust to runner hardware while still catching regressions in the
  shard/merge path.

Usage::

    python benchmarks/check_distributed_regression.py BASELINE.json \
        FRESH.json [--tolerance 0.30]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=Path)
    parser.add_argument("fresh", type=Path)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="maximum allowed relative throughput-ratio drop "
        "(default 0.30)",
    )
    args = parser.parse_args(argv)

    baseline = json.loads(args.baseline.read_text())["distributed"]
    fresh = json.loads(args.fresh.read_text())["distributed"]
    if baseline.get("scale") != fresh.get("scale"):
        print(
            f"scale mismatch: baseline {baseline.get('scale')} vs "
            f"fresh {fresh.get('scale')} — ratios are not comparable"
        )
        return 1

    parity = fresh.get("parity", {})
    print(
        f"parity: {parity.get('scores_checked', 0)} scores checked over "
        f"{parity.get('platforms_checked', 0)} platforms, "
        f"{parity.get('mismatches', '?')} mismatches"
    )
    if parity.get("mismatches", 1) != 0:
        print("sharded replay scores diverged from the single-process pass")
        return 1
    if parity.get("costs_match") is not True:
        print("settled costs diverged from the single-process pass")
        return 1

    if not fresh.get("deterministic_costs", False):
        print("coordinator cost settlement was not deterministic")
        return 1
    print(
        f"cost digest: fresh {fresh.get('cost_digest')} "
        f"(baseline {baseline.get('cost_digest')})"
    )

    serving = fresh.get("serving", {})
    lost = serving.get("lost")
    points = serving.get("sweep", [])
    print(
        f"serving: {len(points)} sweep points over "
        f"{serving.get('records', 0)} records, lost={lost}"
    )
    if lost != 0 or any(point.get("lost", 1) != 0 for point in points):
        print("async serving dropped requests under load")
        return 1

    old = float(baseline["best_ratio"])
    new = float(fresh["best_ratio"])
    drop = (old - new) / old
    status = "FAIL" if drop > args.tolerance else "ok"
    print(
        f"distributed replay: baseline {old:.2f}x fresh {new:.2f}x "
        f"drop {drop:+.1%} [{status}]"
    )
    if drop > args.tolerance:
        print(f"distributed throughput ratio regressed > {args.tolerance:.0%}")
        return 1
    print("distributed throughput ratio within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
