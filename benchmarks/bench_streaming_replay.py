"""P4 — Streaming fleet replay: incremental engine vs the observe() loop.

Measures the streaming subsystem's replay throughput against the pre-PR
serving path — ``OnlinePredictionService.observe`` over ``iter_stream``
record objects, recomputing every window-dependent feature per scored CE —
on the paper-shape purley fleet.  Both paths score every CE (zero rescore
interval) through the same fitted pipeline and a constant model, so the
comparison isolates the replay machinery: record-object loop + window
re-scans versus columnar merge + incremental delta state + micro-batched
scoring.

The engine is timed on its default ``batched`` column-wise kernels, with
the pure-Python ``per_event`` reference timed alongside and gated for
bit-for-bit score parity (``engines_match``).

Acceptance bar at ``scale=1.0``: >= 5x events/sec, artifact
``results/streaming_replay.json``.  Other scales write the ``_smoke``
variant the CI regression gate diffs (and additionally run the engine in
``verify_parity`` mode — every streamed vector bit-for-bit against
``transform_one``).

Run with::

    pytest benchmarks/bench_streaming_replay.py --streaming [--bench-scale S]
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from conftest import SEED, best_of, write_result
from repro.features.pipeline import FeaturePipeline
from repro.mlops.feature_store import FeatureStore
from repro.mlops.model_registry import ModelRegistry
from repro.mlops.serving import AlarmSystem, OnlinePredictionService
from repro.simulator import FleetConfig, purley_platform, simulate_fleet
from repro.streaming.replay import ReplayEngine
from repro.telemetry.log_store import iter_stream


class _ConstantModel:
    """Fixed-score model: replay cost is pure feature extraction."""

    def predict_proba(self, X) -> np.ndarray:
        return np.zeros(np.asarray(X).shape[0])


def _deploy_constant_model(platform: str) -> ModelRegistry:
    registry = ModelRegistry()
    version = registry.register(
        platform, "const", _ConstantModel(), threshold=0.99, metrics={"f1": 0.9}
    )
    registry.promote_to_staging(version)
    registry.promote_to_production(version)
    return registry


def test_streaming_replay_speedup(request):
    """--streaming mode: ReplayEngine vs the observe() loop, same workload."""
    if not request.config.getoption("--streaming"):
        pytest.skip("run with --streaming to benchmark the replay engine")
    scale = float(request.config.getoption("--bench-scale"))
    simulation = simulate_fleet(
        FleetConfig(
            platform=purley_platform(scale=scale),
            duration_hours=2880.0,
            seed=SEED,
        )
    )
    store = simulation.store
    pipeline = FeaturePipeline()
    pipeline.fit(store)
    configs = store.configs

    # -- baseline: the pre-PR serving loop ---------------------------------
    records = list(iter_stream(store))
    feature_store = FeatureStore(pipeline)
    service = OnlinePredictionService(
        feature_store,
        _deploy_constant_model("intel_purley"),
        AlarmSystem(),
        "intel_purley",
        rescore_interval_hours=0.0,
    )
    for dimm_id, config in configs.items():
        service.register_config(dimm_id, config)
    start = time.perf_counter()
    for record in records:
        service.observe(record)
    observe_seconds = time.perf_counter() - start
    assert service.scored > 0
    observe_rate = len(records) / observe_seconds

    # -- streaming engine (both replay kernels) ----------------------------
    def run_engine(replay_engine, collect_scores=False):
        engine = ReplayEngine(
            pipeline,
            _ConstantModel(),
            0.99,
            "intel_purley",
            configs=configs,
            rescore_interval_hours=0.0,
            batch_size=256,
            engine=replay_engine,
            collect_scores=collect_scores,
        )
        report = engine.replay(store)
        return engine, report

    # Cross-engine gate: the batched numpy kernels must reproduce the
    # per-event reference loop's scoring schedule exactly.
    batched_engine, batched_report = run_engine("batched", collect_scores=True)
    pe_engine, pe_report = run_engine("per_event", collect_scores=True)
    engines_match = (
        batched_engine.score_log == pe_engine.score_log
        and batched_report.alarms == pe_report.alarms
        and batched_report.batches == pe_report.batches
    )
    assert engines_match, "batched replay diverged from per_event"

    rounds = 3 if scale >= 1.0 else 5
    engine_seconds, (_, report) = best_of(
        rounds, lambda: run_engine("batched")
    )
    per_event_seconds, (_, pe_timed) = best_of(
        rounds, lambda: run_engine("per_event")
    )
    engine_rate = report.events / engine_seconds
    per_event_rate = pe_timed.events / per_event_seconds
    assert report.scored == service.scored  # identical scoring schedule
    assert report.events == len(records)

    result = {
        "scale": scale,
        "events": report.events,
        "ces": report.ces,
        "scored": report.scored,
        "engine": "batched",
        "observe_seconds": round(observe_seconds, 3),
        "observe_events_per_second": round(observe_rate),
        "engine_seconds": round(engine_seconds, 3),
        "engine_events_per_second": round(engine_rate),
        "per_event_seconds": round(per_event_seconds, 3),
        "per_event_events_per_second": round(per_event_rate),
        "speedup": round(engine_rate / observe_rate, 2),
        "batched_vs_per_event": round(engine_rate / per_event_rate, 2),
        "engines_match": engines_match,
        "stage_seconds": {
            stage: round(seconds, 4)
            for stage, seconds in report.stage_seconds.items()
        },
    }

    if scale >= 1.0:
        # Acceptance bar: >= 5x events/sec over the pre-PR observe() loop.
        assert result["speedup"] >= 5.0, result
        artifact = "streaming_replay.json"
    else:
        # Smoke mode doubles as the CI parity gate: every streamed vector
        # is cross-checked against transform_one (on the batched kernels,
        # the engine CI exercises).
        verify_engine = ReplayEngine(
            pipeline,
            _ConstantModel(),
            0.99,
            "intel_purley",
            configs=configs,
            rescore_interval_hours=0.0,
            batch_size=256,
            engine="batched",
            verify_parity=True,
        )
        verified = verify_engine.replay(store)
        assert verified.parity["checked"] == verified.scored > 0
        assert verified.parity["mismatches"] == 0, verified.parity
        result["parity"] = verified.parity
        artifact = "streaming_replay_smoke.json"
    write_result(artifact, json.dumps({"streaming_replay": result}, indent=2))
