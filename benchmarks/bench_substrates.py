"""P1 — Substrate micro-benchmarks.

Throughput of the hot paths under everything else: bit-accurate ECC
decode, behavioural ECC adjudication, feature extraction, GBDT training
and fleet simulation.
"""

import numpy as np

from repro.dram.errorbits import BusErrorPattern, DeviceErrorBitmap
from repro.ecc.hsiao import HsiaoSecDed
from repro.ecc.models import PurleyEccModel
from repro.ecc.reed_solomon import ReedSolomonChipkill
from repro.features.pipeline import FeaturePipeline
from repro.features.windows import DimmHistory
from repro.ml.gbdt import GbdtClassifier, GbdtParams
from repro.simulator import FleetConfig, purley_platform, simulate_fleet


def test_hsiao_decode_throughput(benchmark):
    code = HsiaoSecDed()
    rng = np.random.default_rng(0)
    words = [code.encode(rng.integers(0, 2, 64, dtype=np.uint8)) for _ in range(64)]
    for word in words[::2]:
        word[rng.integers(0, 72)] ^= 1  # half carry a single-bit error

    def decode_all():
        return [code.decode(word).status for word in words]

    statuses = benchmark(decode_all)
    assert len(statuses) == 64


def test_reed_solomon_decode_throughput(benchmark):
    code = ReedSolomonChipkill()
    rng = np.random.default_rng(0)
    codewords = []
    for _ in range(64):
        word = list(code.encode([int(x) for x in rng.integers(0, 256, code.k)]))
        word[int(rng.integers(0, 18))] ^= int(rng.integers(1, 256))
        codewords.append(word)

    def decode_all():
        return [code.decode(word).status for word in codewords]

    statuses = benchmark(decode_all)
    assert len(statuses) == 64


def test_behavioural_ecc_adjudication_throughput(benchmark):
    model = PurleyEccModel()
    rng = np.random.default_rng(0)
    patterns = [
        BusErrorPattern.from_device_bitmaps(
            {
                int(rng.integers(0, 18)): DeviceErrorBitmap.from_positions(
                    [(int(rng.integers(0, 8)), int(rng.integers(0, 4)))]
                )
            }
        )
        for _ in range(256)
    ]

    def adjudicate_all():
        return [model.ue_probability(pattern) for pattern in patterns]

    probabilities = benchmark(adjudicate_all)
    assert len(probabilities) == 256


def test_feature_extraction_throughput(benchmark, paper_study):
    simulation = paper_study["intel_purley"]
    store = simulation.store
    pipeline = FeaturePipeline()
    pipeline.fit(store)
    dimm_ids = store.dimm_ids_with_ces()[:50]
    histories = [
        DimmHistory.from_records(
            d, store.ces_for_dimm(d), store.events_for_dimm(d)
        )
        for d in dimm_ids
    ]
    configs = [store.config_for(d) for d in dimm_ids]

    def extract_all():
        return [
            pipeline.transform_one(history, config, 2000.0)
            for history, config in zip(histories, configs)
        ]

    vectors = benchmark(extract_all)
    assert len(vectors) == 50


def test_gbdt_training_throughput(benchmark):
    rng = np.random.default_rng(0)
    X = rng.normal(size=(2000, 40))
    y = (X[:, 0] + X[:, 1] * X[:, 2] > 0.5).astype(int)

    def train():
        return GbdtClassifier(
            GbdtParams(n_estimators=30, early_stopping_rounds=None)
        ).fit(X, y)

    model = benchmark.pedantic(train, iterations=1, rounds=3)
    assert model.best_iteration_ == 30


def test_fleet_simulation_throughput(benchmark):
    config = FleetConfig(
        platform=purley_platform(scale=0.05), duration_hours=720.0, seed=3
    )
    result = benchmark.pedantic(
        simulate_fleet, args=(config,), iterations=1, rounds=3
    )
    assert len(result.store.ces) > 0
