"""CI gate: the observability layer must be provably free.

Reads a fresh ``observability*.json`` artifact written by
``bench_observability.py`` and gates the layer's contract:

* **parity** — every bit-parity flag (score logs, alarm summaries, bus
  counts, settled cost digest) must be true: instrumentation changes
  nothing observable;
* **exporters** — the Prometheus exposition must have parsed back and
  the JSONL dump must have round-tripped;
* **overhead** — the median of the paired (plain, instrumented) timing
  samples must stay below ``--max-overhead`` (default 10%); older
  artifacts without ``overhead_samples`` gate on the single recorded
  ``overhead_fraction``.

Usage::

    python benchmarks/check_observability_overhead.py FRESH.json \
        [--max-overhead 0.10]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from statistics import median


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", type=Path)
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=0.10,
        help="maximum allowed instrumentation overhead (default 0.10)",
    )
    args = parser.parse_args(argv)

    result = json.loads(args.fresh.read_text())["observability"]
    failures = []

    parity = result.get("parity", {})
    for gate in ("score_logs", "alarm_summaries", "bus_counts", "cost_digest"):
        flag = parity.get(gate, False)
        print(f"parity[{gate}]: {'OK' if flag else 'FAIL'}")
        if not flag:
            failures.append(f"parity gate {gate} failed")

    for gate in ("prometheus_ok", "jsonl_ok"):
        flag = result.get(gate, False)
        print(f"{gate}: {'OK' if flag else 'FAIL'}")
        if not flag:
            failures.append(f"exporter gate {gate} failed")

    samples = [
        float(sample)
        for sample in result.get(
            "overhead_samples",
            [result.get("overhead_fraction", float("inf"))],
        )
    ]
    overhead = median(samples)
    print(
        f"overhead: {overhead:+.1%} median of "
        f"{[f'{sample:+.1%}' for sample in samples]} "
        f"(plain {result.get('plain_seconds')}s -> instrumented "
        f"{result.get('instrumented_seconds')}s, "
        f"limit {args.max_overhead:.0%})"
    )
    if overhead >= args.max_overhead:
        failures.append(
            f"overhead {overhead:.1%} >= limit {args.max_overhead:.0%}"
        )

    print(
        f"surface: {result.get('metric_families')} metric families, "
        f"{result.get('metric_samples')} samples, "
        f"root spans {result.get('root_spans')}, "
        f"cost digest {result.get('cost_digest')}"
    )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("observability gate: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
