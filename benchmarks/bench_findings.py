"""E5 — Findings 1-3: programmatic checks on the paper-shape fleet.

(Finding 4 depends on the Table II run and is reported, not asserted, in
EXPERIMENTS.md — see the reproduction-deviation note there.)
"""

from conftest import write_result

from repro.analysis import fig4_series, fig5_panels, table1_series
from repro.analysis.findings import check_finding1, check_finding2, check_finding3


def test_findings_1_2_3(benchmark, paper_stores):
    def run():
        stats = table1_series(paper_stores)
        fig4 = fig4_series(paper_stores)
        fig5 = {
            platform: fig5_panels(paper_stores[platform])
            for platform in ("intel_purley", "intel_whitley")
        }
        return (
            check_finding1(stats),
            check_finding2(fig4),
            check_finding3(fig5),
        )

    checks = benchmark.pedantic(run, iterations=1, rounds=1)
    report = "\n".join(
        f"Finding {c.finding}: {'PASS' if c.passed else 'FAIL'} — {c.description}\n"
        f"    {c.details}"
        for c in checks
    )
    write_result("findings.txt", report)
    for check in checks:
        assert check.passed, check.details
