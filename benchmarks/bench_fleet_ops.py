"""P5 — Fleet operations: merged single-pass replay vs sequential replays.

Replays the whole three-platform heterogeneous fleet (purley + whitley +
k920) through :class:`~repro.fleetops.engine.FleetReplayEngine` in ONE
pass — per-platform production models, incident-aware mitigation policy,
cost accounting — and compares wall clock against the natural pre-PR way:
three sequential single-platform :class:`ReplayEngine` replays of the
same campaigns (same scoring schedule, zero rescore interval, identical
per-platform micro-batching).

Both paths use the same fitted pipelines and a deterministic echo model,
so the comparison isolates the replay machinery: three lexsorts + three
Python loops with per-event branch dispatch versus one merged lexsort and
one pre-permuted zip loop.  Alongside the timing, the benchmark gates two
correctness properties the CI smoke job relies on:

* **parity** — per-platform, per-DIMM score streams from the merged pass
  are bit-for-bit the single-platform streams;
* **determinism** — two merged passes with the same seed produce
  identical cost summaries and action logs (the artifact records a
  digest of the settled cost model).

Acceptance bar at ``scale=1.0``: merged >= 1.0x the sequential total,
artifact ``results/fleet_ops.json``.  Other scales write the ``_smoke``
variant the CI regression gate diffs.

Run with::

    pytest benchmarks/bench_fleet_ops.py --fleet-ops [--bench-scale S]
"""

from __future__ import annotations

import hashlib
import json
import time

import numpy as np
import pytest

from conftest import SEED, best_of, write_result
from repro.features.labeling import LabelingParams
from repro.features.pipeline import FeaturePipeline
from repro.fleetops.engine import FleetReplayEngine, ServingAssignment
from repro.fleetops.policy import PolicyEngine
from repro.fleetops.stream import merge_fleet_streams
from repro.simulator import simulate_study
from repro.streaming.replay import ReplayEngine

THRESHOLD = 0.985
DURATION_HOURS = 2880.0


class _EchoModel:
    """Deterministic feature-dependent scores (no ML fit, full parity)."""

    def predict_proba(self, X) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        return 1.0 / (1.0 + np.exp(-X.sum(axis=1) / 100.0))


def _assignments(study, pipelines):
    model = _EchoModel()
    return {
        name: ServingAssignment(
            platform=name,
            model_name="echo",
            train_platform=name,
            model=model,
            threshold=THRESHOLD,
            pipeline=pipelines[name],
            configs=simulation.store.configs,
            live_from_hour=0.6 * simulation.duration_hours,
        )
        for name, simulation in study.items()
    }


def _run_merged(study, pipelines, collect_scores=False, engine="batched"):
    stores = {name: sim.store for name, sim in study.items()}
    fleet_engine = FleetReplayEngine(
        _assignments(study, pipelines),
        labeling=LabelingParams(),
        policy=PolicyEngine(seed=SEED),
        rescore_interval_hours=0.0,
        batch_size=256,
        engine=engine,
        collect_scores=collect_scores,
    )
    # The batched engine derives its own merged order from the columnar
    # stores, so the stream can stay a manifest; the per-event reference
    # consumes the fully decoded stream.
    stream = merge_fleet_streams(
        stores, decode_payloads=(engine == "per_event")
    )
    report = fleet_engine.replay(stream, stores)
    return fleet_engine, report


def _run_sequential(study, pipelines, collect_scores=False):
    """The pre-PR baseline: three per-event single-platform replays."""
    engines, reports = {}, {}
    for name, simulation in study.items():
        engine = ReplayEngine(
            pipelines[name],
            _EchoModel(),
            THRESHOLD,
            name,
            configs=simulation.store.configs,
            labeling=LabelingParams(),
            live_from_hour=0.6 * simulation.duration_hours,
            rescore_interval_hours=0.0,
            batch_size=256,
            engine="per_event",
            collect_scores=collect_scores,
        )
        reports[name] = engine.replay(simulation.store)
        engines[name] = engine
    return engines, reports


def _cost_digest(report) -> str:
    body = json.dumps(
        {
            "costs": report.costs,
            "fleet_cost": report.fleet_cost,
            "actions": report.actions,
        },
        sort_keys=True,
    )
    return hashlib.sha256(body.encode("utf-8")).hexdigest()[:16]


def test_fleet_ops_replay(request):
    """--fleet-ops mode: merged fleet pass vs three sequential replays."""
    if not request.config.getoption("--fleet-ops"):
        pytest.skip("run with --fleet-ops to benchmark the fleet engine")
    scale = float(request.config.getoption("--bench-scale"))
    study = simulate_study(
        scale=scale, seed=SEED, duration_hours=DURATION_HOURS
    )
    pipelines = {}
    for name, simulation in study.items():
        pipeline = FeaturePipeline()
        pipeline.fit(simulation.store)
        pipelines[name] = pipeline

    # -- correctness gates (untimed) ---------------------------------------
    merged_engine, merged_report = _run_merged(
        study, pipelines, collect_scores=True
    )
    pe_engine, pe_report = _run_merged(
        study, pipelines, collect_scores=True, engine="per_event"
    )
    single_engines, single_reports = _run_sequential(
        study, pipelines, collect_scores=True
    )
    parity_ok = all(
        merged_engine.score_logs[name] == single_engines[name].score_log
        for name in study
    )
    assert parity_ok, "merged-fleet scores diverged from single-platform runs"
    engines_match = all(
        merged_engine.score_logs[name] == pe_engine.score_logs[name]
        for name in study
    ) and _cost_digest(pe_report) == _cost_digest(merged_report)
    assert engines_match, "batched fleet engine diverged from per_event"
    assert merged_report.scored == sum(
        r.scored for r in single_reports.values()
    )
    digest = _cost_digest(merged_report)
    _, second_report = _run_merged(study, pipelines)
    deterministic = _cost_digest(second_report) == digest
    assert deterministic, "fleet cost summary is not deterministic"

    # -- timing ------------------------------------------------------------
    rounds = 3 if scale >= 1.0 else 5
    sequential_seconds, (_, seq_reports) = best_of(
        rounds, lambda: _run_sequential(study, pipelines)
    )
    merged_seconds, (_, timed_report) = best_of(
        rounds, lambda: _run_merged(study, pipelines)
    )
    events = timed_report.events
    assert events == sum(r.events for r in seq_reports.values())
    speedup = sequential_seconds / merged_seconds

    result = {
        "scale": scale,
        "platforms": sorted(study),
        "events": events,
        "scored": timed_report.scored,
        "engine": "batched",
        "sequential_engine": "per_event",
        "sequential_seconds": round(sequential_seconds, 3),
        "sequential_events_per_second": round(events / sequential_seconds),
        "merged_seconds": round(merged_seconds, 3),
        "merged_events_per_second": round(events / merged_seconds),
        "merged_per_event_seconds": round(pe_report.seconds, 3),
        "merged_per_event_events_per_second": round(
            events / pe_report.seconds
        ),
        "speedup": round(speedup, 3),
        "stage_seconds": {
            stage: round(seconds, 4)
            for stage, seconds in timed_report.stage_seconds.items()
        },
        "parity": {
            "platforms_checked": len(study),
            "scores_checked": sum(
                len(log) for log in merged_engine.score_logs.values()
            ),
            "mismatches": 0 if parity_ok else 1,
            "engines_match": engines_match,
        },
        "deterministic_costs": deterministic,
        "cost_digest": digest,
        "fleet_cost": merged_report.fleet_cost,
        "actions": merged_report.actions,
    }

    if scale >= 1.0:
        # Acceptance bar: the merged single pass beats three sequential
        # replays of the same campaigns.
        assert speedup >= 1.0, result
        artifact = "fleet_ops.json"
    else:
        artifact = "fleet_ops_smoke.json"
    write_result(artifact, json.dumps({"fleet_ops": result}, indent=2))
