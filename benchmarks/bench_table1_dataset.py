"""E1 — Table I: dataset description per platform.

Regenerates the paper's Table I rows (DIMMs with CEs / UEs, predictable vs
sudden UE shares) from the calibrated fleet and times the statistics pass.
"""

from conftest import write_result

from repro.analysis import table1_series
from repro.evaluation.reporting import render_table1
from repro.simulator.calibration import PAPER_TABLE1


def test_table1_dataset_description(benchmark, paper_stores):
    stats = benchmark.pedantic(
        table1_series, args=(paper_stores,), iterations=1, rounds=3
    )
    write_result("table1.txt", render_table1(stats))

    # Shape assertions against the paper's Table I.
    for platform, row in PAPER_TABLE1.items():
        measured = stats[platform]
        assert measured.dimms_with_ues > 0
        # Predictable/sudden split within 15 percentage points of the paper.
        assert abs(measured.predictable_share - row.predictable_ue_share) < 0.15
    # Fleet-size ordering: Purley > K920 > Whitley (paper: 50k > 30k > 10k).
    assert (
        stats["intel_purley"].dimms_with_ces
        > stats["k920"].dimms_with_ces
        > stats["intel_whitley"].dimms_with_ces
    )
