"""P9 — Observability overhead: instrumented vs uninstrumented replay.

Replays the three-platform heterogeneous fleet through
:class:`~repro.fleetops.engine.FleetReplayEngine` twice — once bare,
once with a full :class:`~repro.obs.Observability` bundle wired in
(metrics registry + hierarchical tracer) — and gates the layer's core
contract:

* **bit-parity** — per-platform score logs, alarm summaries, bus counts
  and the settled cost digest of the instrumented run are bit-for-bit
  the uninstrumented run's.  Instrumentation only *reads* finished
  reports and clocks; it never touches RNG, ordering, or numerics.
* **exporters** — the run's Prometheus text exposition parses back
  cleanly and the JSONL dump round-trips to an identical payload.
* **overhead** — best-of-N wall clock with instrumentation on stays
  within 10% of the bare run (gated by
  ``check_observability_overhead.py`` on the recorded artifact).

Artifact: ``results/observability.json`` at ``--bench-scale 1.0``,
``results/observability_smoke.json`` otherwise (the CI smoke job's
input).

Run with::

    pytest benchmarks/bench_observability.py --observability [--bench-scale S]
"""

from __future__ import annotations

import hashlib
import json

import numpy as np
import pytest

from conftest import SEED, best_of, write_result
from repro.features.labeling import LabelingParams
from repro.features.pipeline import FeaturePipeline
from repro.fleetops.engine import FleetReplayEngine, ServingAssignment
from repro.fleetops.policy import PolicyEngine
from repro.fleetops.stream import merge_fleet_streams
from repro.obs import (
    Observability,
    parse_prometheus,
    payload_from_jsonl,
    payload_to_jsonl,
    to_prometheus,
)
from repro.simulator import simulate_study

THRESHOLD = 0.985
DURATION_HOURS = 2880.0
#: Heartbeat cadence for the instrumented runs: frequent enough to prove
#: the live-telemetry path is exercised, coarse enough to stay cheap.
HEARTBEAT_EVERY = 2000


class _EchoModel:
    """Deterministic feature-dependent scores (no ML fit, full parity)."""

    def predict_proba(self, X) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        return 1.0 / (1.0 + np.exp(-X.sum(axis=1) / 100.0))


def _assignments(study, pipelines):
    model = _EchoModel()
    return {
        name: ServingAssignment(
            platform=name,
            model_name="echo",
            train_platform=name,
            model=model,
            threshold=THRESHOLD,
            pipeline=pipelines[name],
            configs=simulation.store.configs,
            live_from_hour=0.6 * simulation.duration_hours,
        )
        for name, simulation in study.items()
    }


def _run(study, pipelines, obs=None, collect_scores=False, heartbeat_every=0):
    stores = {name: sim.store for name, sim in study.items()}
    engine = FleetReplayEngine(
        _assignments(study, pipelines),
        labeling=LabelingParams(),
        policy=PolicyEngine(seed=SEED),
        rescore_interval_hours=0.0,
        batch_size=256,
        engine="batched",
        collect_scores=collect_scores,
        obs=obs,
        heartbeat_every=heartbeat_every,
    )
    stream = merge_fleet_streams(stores)
    report = engine.replay(stream, stores)
    return engine, report


def _cost_digest(report) -> str:
    body = json.dumps(
        {
            "costs": report.costs,
            "fleet_cost": report.fleet_cost,
            "actions": report.actions,
        },
        sort_keys=True,
    )
    return hashlib.sha256(body.encode("utf-8")).hexdigest()[:16]


def _alarm_summaries(report) -> dict:
    return {
        name: payload["alarms"] for name, payload in report.platforms.items()
    }


def test_observability_overhead(request):
    """--observability mode: parity + exporter health + overhead."""
    if not request.config.getoption("--observability"):
        pytest.skip("run with --observability to benchmark the obs layer")
    scale = float(request.config.getoption("--bench-scale"))
    study = simulate_study(
        scale=scale, seed=SEED, duration_hours=DURATION_HOURS
    )
    pipelines = {}
    for name, simulation in study.items():
        pipeline = FeaturePipeline()
        pipeline.fit(simulation.store)
        pipelines[name] = pipeline

    # -- bit-parity gate (untimed) -----------------------------------------
    plain_engine, plain_report = _run(
        study, pipelines, collect_scores=True
    )
    obs = Observability()
    obs_engine, obs_report = _run(
        study, pipelines, obs=obs, collect_scores=True,
        heartbeat_every=HEARTBEAT_EVERY,
    )
    parity = {
        "score_logs": all(
            plain_engine.score_logs[name] == obs_engine.score_logs[name]
            for name in study
        ),
        "alarm_summaries": (
            _alarm_summaries(plain_report) == _alarm_summaries(obs_report)
        ),
        "bus_counts": plain_report.bus_counts == obs_report.bus_counts,
        "cost_digest": _cost_digest(plain_report) == _cost_digest(obs_report),
    }
    parity["all"] = all(parity.values())
    assert parity["all"], parity

    # -- exporter health ----------------------------------------------------
    exposition = to_prometheus(obs)
    parsed = parse_prometheus(exposition)
    prometheus_ok = (
        parsed["types"].get("repro_replay_events_total") == "counter"
        and len(parsed["samples"]) > 0
    )
    assert prometheus_ok, "prometheus exposition failed to round-trip"
    payload = obs.payload()
    rebuilt = payload_from_jsonl(payload_to_jsonl(obs))
    # the dump carries samples + spans verbatim; registration-order
    # metadata (label_names order, histogram bounds) is not round-tripped
    jsonl_ok = rebuilt["spans"] == payload["spans"] and all(
        rebuilt["metrics"][name]["samples"] == family["samples"]
        and rebuilt["metrics"][name]["type"] == family["type"]
        for name, family in payload["metrics"].items()
    )
    assert jsonl_ok, "JSONL dump did not round-trip"
    roots = [span["name"] for span in payload["spans"]]
    assert "fleet_replay" in roots, roots

    # -- overhead: median of 3 paired (plain, instrumented) samples --------
    # Pairing each instrumented run with an adjacent bare run, then taking
    # the median ratio, damps one-sided scheduler noise that a single
    # best-of comparison can mistake for instrumentation cost.  The
    # instrumented side runs with live heartbeats on, so the gate covers
    # the telemetry plane's hot path, not just the report projection.
    overhead_samples = []
    plain_seconds = obs_seconds = float("inf")
    for _ in range(3):
        pair_plain, (_, timed_plain) = best_of(
            1, lambda: _run(study, pipelines)
        )
        pair_obs, (_, timed_obs) = best_of(
            1,
            lambda: _run(
                study, pipelines, obs=Observability(),
                heartbeat_every=HEARTBEAT_EVERY,
            ),
        )
        assert timed_plain.events == timed_obs.events
        overhead_samples.append(pair_obs / pair_plain - 1.0)
        plain_seconds = min(plain_seconds, pair_plain)
        obs_seconds = min(obs_seconds, pair_obs)
    overhead = sorted(overhead_samples)[len(overhead_samples) // 2]

    result = {
        "scale": scale,
        "platforms": sorted(study),
        "events": timed_plain.events,
        "scored": timed_plain.scored,
        "plain_seconds": round(plain_seconds, 4),
        "instrumented_seconds": round(obs_seconds, 4),
        "overhead_fraction": round(overhead, 4),
        "overhead_samples": [
            round(sample, 4) for sample in overhead_samples
        ],
        "heartbeat_every": HEARTBEAT_EVERY,
        "parity": parity,
        "cost_digest": _cost_digest(obs_report),
        "prometheus_ok": prometheus_ok,
        "jsonl_ok": jsonl_ok,
        "metric_families": len(payload["metrics"]),
        "metric_samples": sum(
            len(family["samples"])
            for family in payload["metrics"].values()
        ),
        "root_spans": roots,
    }
    artifact = (
        "observability.json" if scale >= 1.0 else "observability_smoke.json"
    )
    write_result(artifact, json.dumps({"observability": result}, indent=2))
