"""A2 — Labeling-window sweep: lead time x prediction-window size."""

from conftest import write_result

from repro.evaluation.ablation import window_sweep


def test_window_sweep(benchmark, ml_study, ml_protocol):
    rows = benchmark.pedantic(
        window_sweep,
        args=(ml_study["intel_purley"], ml_protocol),
        kwargs={
            "lead_hours": (0.0, 3.0),
            "prediction_windows_hours": (360.0, 720.0),
            "model_name": "lightgbm",
        },
        iterations=1,
        rounds=1,
    )
    lines = ["A2: labeling-window sweep (Intel Purley, LightGBM)"]
    for row in rows:
        lines.append(
            f"  {row.label:<26} P={row.result.precision:.2f} "
            f"R={row.result.recall:.2f} F1={row.result.f1:.2f}"
        )
    write_result("ablation_windows.txt", "\n".join(lines))
    assert all(0.0 <= row.result.f1 <= 1.0 for row in rows)
