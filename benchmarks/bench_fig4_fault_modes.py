"""E2 — Figure 4: relative % of UE per fault category and platform."""

from conftest import write_result

from repro.analysis import fig4_series
from repro.evaluation.reporting import render_fig4
from repro.simulator.calibration import FIG4_SINGLE_OVER_MULTI


def test_fig4_relative_ue_rates(benchmark, paper_stores):
    series = benchmark.pedantic(
        fig4_series, args=(paper_stores,), iterations=1, rounds=1
    )
    write_result("fig4.txt", render_fig4(series))

    for platform, single_wins in FIG4_SINGLE_OVER_MULTI.items():
        single = series[platform]["single_device"].rate
        multi = series[platform]["multi_device"].rate
        if single_wins:
            assert single >= multi, f"{platform}: single should dominate"
        else:
            assert multi > single, f"{platform}: multi should dominate"

    # Higher-level fault modes carry the UE risk on every platform.
    for platform, stats in series.items():
        higher = max(stats["row"].rate, stats["bank"].rate)
        assert higher >= stats["cell"].rate
