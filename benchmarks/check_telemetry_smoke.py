"""CI gate: the live telemetry plane serves mid-run and changes nothing.

Replays a small fleet twice — once bare (the baseline digest), once with
a full live telemetry plane: :class:`~repro.obs.Observability` with the
replay SLO alert rules, event-count heartbeats, and a
:class:`~repro.obs.TelemetryServer` being hammered by concurrent scraper
threads for the whole run.  Gates:

* every ``/metrics`` response parses as Prometheus text exposition and
  every ``/metrics.json`` / ``/progress`` response parses as JSON — no
  torn scrapes under concurrency;
* at least one scrape observed in-flight ``repro_heartbeat`` gauges
  (the run was actually visible mid-flight, not just after the fact);
* ``/healthz`` answers throughout, and 200 by the end of a clean run;
* the instrumented run's score logs, alarm summaries, bus counts and
  settled cost digest are bit-for-bit the baseline's.

Usage::

    python benchmarks/check_telemetry_smoke.py [--scale 0.1]
        [--heartbeat-every 500] [--scrapers 4]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import threading
import urllib.error
import urllib.request

import numpy as np

from repro.features.labeling import LabelingParams
from repro.features.pipeline import FeaturePipeline
from repro.fleetops.engine import FleetReplayEngine, ServingAssignment
from repro.fleetops.policy import PolicyEngine
from repro.fleetops.stream import merge_fleet_streams
from repro.obs import (
    DEFAULT_REPLAY_RULES,
    AlertEngine,
    Observability,
    TelemetryServer,
    parse_prometheus,
)
from repro.simulator import simulate_study

SEED = 7
THRESHOLD = 0.985
DURATION_HOURS = 1440.0


class _EchoModel:
    """Deterministic feature-dependent scores (no ML fit, full parity)."""

    def predict_proba(self, X) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        return 1.0 / (1.0 + np.exp(-X.sum(axis=1) / 100.0))


def _run(study, pipelines, obs=None, heartbeat_every=0):
    model = _EchoModel()
    assignments = {
        name: ServingAssignment(
            platform=name,
            model_name="echo",
            train_platform=name,
            model=model,
            threshold=THRESHOLD,
            pipeline=pipelines[name],
            configs=simulation.store.configs,
            live_from_hour=0.6 * simulation.duration_hours,
        )
        for name, simulation in study.items()
    }
    stores = {name: sim.store for name, sim in study.items()}
    engine = FleetReplayEngine(
        assignments,
        labeling=LabelingParams(),
        policy=PolicyEngine(seed=SEED),
        rescore_interval_hours=0.0,
        batch_size=256,
        engine="batched",
        collect_scores=True,
        obs=obs,
        heartbeat_every=heartbeat_every,
    )
    stream = merge_fleet_streams(stores)
    report = engine.replay(stream, stores)
    return engine, report


def _digest(engine, report) -> dict:
    body = json.dumps(
        {
            "costs": report.costs,
            "fleet_cost": report.fleet_cost,
            "actions": report.actions,
        },
        sort_keys=True,
    )
    return {
        "score_logs": {
            name: hashlib.sha256(
                json.dumps(log).encode("utf-8")
            ).hexdigest()
            for name, log in sorted(engine.score_logs.items())
        },
        "alarms": {
            name: payload["alarms"]
            for name, payload in sorted(report.platforms.items())
        },
        "bus_counts": dict(sorted(report.bus_counts.items())),
        "cost_digest": hashlib.sha256(body.encode("utf-8")).hexdigest()[:16],
    }


class _Scraper(threading.Thread):
    """Hammer the endpoint until stopped; validate every response."""

    def __init__(self, url: str, stop: threading.Event):
        super().__init__(daemon=True)
        self.url = url
        self.stop = stop
        self.scrapes = 0
        self.heartbeat_sightings = 0
        self.healthz_answers = 0
        self.failures: list[str] = []

    def run(self) -> None:
        while not self.stop.is_set():
            try:
                with urllib.request.urlopen(
                    self.url + "/metrics", timeout=5
                ) as response:
                    text = response.read().decode("utf-8")
                parse_prometheus(text)
                self.scrapes += 1
                if "repro_heartbeat{" in text:
                    self.heartbeat_sightings += 1
                with urllib.request.urlopen(
                    self.url + "/progress", timeout=5
                ) as response:
                    json.loads(response.read().decode("utf-8"))
                try:
                    with urllib.request.urlopen(
                        self.url + "/healthz", timeout=5
                    ) as response:
                        json.loads(response.read().decode("utf-8"))
                    self.healthz_answers += 1
                except urllib.error.HTTPError as error:
                    # 503 is a *valid* healthz answer (degraded), not a
                    # torn response; anything else is a failure.
                    if error.code != 503:
                        raise
                    self.healthz_answers += 1
            except Exception as error:  # noqa: BLE001 - gate reports all
                self.failures.append(repr(error))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--heartbeat-every", type=int, default=500)
    parser.add_argument("--scrapers", type=int, default=4)
    args = parser.parse_args(argv)

    study = simulate_study(
        scale=args.scale, seed=SEED, duration_hours=DURATION_HOURS
    )
    pipelines = {}
    for name, simulation in study.items():
        pipeline = FeaturePipeline()
        pipeline.fit(simulation.store)
        pipelines[name] = pipeline

    baseline_engine, baseline_report = _run(study, pipelines)
    baseline = _digest(baseline_engine, baseline_report)

    obs = Observability(alerts=AlertEngine(DEFAULT_REPLAY_RULES))
    failures: list[str] = []
    stop = threading.Event()
    with TelemetryServer(obs, port=0) as server:
        scrapers = [
            _Scraper(server.url, stop) for _ in range(max(1, args.scrapers))
        ]
        for scraper in scrapers:
            scraper.start()
        obs_engine, obs_report = _run(
            study, pipelines, obs=obs,
            heartbeat_every=args.heartbeat_every,
        )
        stop.set()
        for scraper in scrapers:
            scraper.join(10.0)
        # Final (quiescent) scrape: routes answer and the run is healthy.
        with urllib.request.urlopen(
            server.url + "/healthz", timeout=5
        ) as response:
            health = json.loads(response.read().decode("utf-8"))
        with urllib.request.urlopen(
            server.url + "/metrics", timeout=5
        ) as response:
            final = parse_prometheus(response.read().decode("utf-8"))

    scrapes = sum(scraper.scrapes for scraper in scrapers)
    sightings = sum(scraper.heartbeat_sightings for scraper in scrapers)
    healthz = sum(scraper.healthz_answers for scraper in scrapers)
    for scraper in scrapers:
        failures.extend(scraper.failures)
    print(
        f"scrapes: {scrapes} parsed, {sightings} saw live heartbeats, "
        f"{healthz} healthz answers, {len(failures)} failures"
    )
    if failures:
        for failure in failures[:5]:
            print(f"FAIL: scrape error {failure}", file=sys.stderr)
        return 1
    if not scrapes:
        print("FAIL: no successful concurrent scrape", file=sys.stderr)
        return 1
    if not sightings:
        print("FAIL: no scrape saw in-flight heartbeats", file=sys.stderr)
        return 1
    if health.get("status") != "ok":
        print(f"FAIL: healthz degraded after clean run: {health}",
              file=sys.stderr)
        return 1
    if "repro_heartbeats_total" not in final["types"]:
        print("FAIL: final scrape lacks heartbeat family", file=sys.stderr)
        return 1

    instrumented = _digest(obs_engine, obs_report)
    if instrumented != baseline:
        for key in baseline:
            if baseline[key] != instrumented[key]:
                print(f"FAIL: digest mismatch in {key}", file=sys.stderr)
        return 1
    print("telemetry smoke: OK (digests bit-identical, scrapes clean)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
