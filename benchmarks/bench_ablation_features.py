"""A1 — Feature-group ablation on Intel Purley (GBDT).

The paper argues CE-derived features dominate workload/environment signals
(Section I, citing [27]); this ablation quantifies each feature group's
contribution on our data.
"""

from conftest import write_result

from repro.evaluation.ablation import feature_group_ablation


def test_feature_group_ablation(benchmark, ml_study, ml_protocol):
    rows = benchmark.pedantic(
        feature_group_ablation,
        args=(ml_study["intel_purley"], ml_protocol),
        kwargs={"model_name": "lightgbm"},
        iterations=1,
        rounds=1,
    )
    lines = ["A1: feature-group ablation (Intel Purley, LightGBM)"]
    by_label = {}
    for row in rows:
        lines.append(
            f"  {row.label:<22} P={row.result.precision:.2f} "
            f"R={row.result.recall:.2f} F1={row.result.f1:.2f} "
            f"VIRR={row.result.virr:.2f}"
        )
        by_label[row.label] = row.result.f1
    write_result("ablation_features.txt", "\n".join(lines))

    # Environment features should matter less than bit-level features
    # (paper: workload metrics play a minor role next to CE features).
    drop_env = by_label["all_features"] - by_label["without_environment"]
    drop_bits = by_label["all_features"] - by_label["without_bitlevel"]
    assert drop_env <= drop_bits + 0.15
