"""CI gate: fail when streaming-replay throughput regresses > tolerance.

Compares a freshly measured ``streaming_replay_smoke.json`` against the
committed baseline.  The gate diffs the engine-vs-observe *speedup ratio*
(not absolute events/sec): both paths run on the same machine in the same
process, so the ratio is robust to runner hardware while still catching
real regressions in the incremental replay path.  It also re-asserts the
parity record (the fresh smoke run must report zero mismatches) and the
``engines_match`` flag (the batched kernels reproduced the per_event
reference bit-for-bit).

Usage::

    python benchmarks/check_streaming_regression.py BASELINE.json FRESH.json \
        [--tolerance 0.30]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=Path)
    parser.add_argument("fresh", type=Path)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="maximum allowed relative speedup drop (default 0.30)",
    )
    args = parser.parse_args(argv)

    baseline = json.loads(args.baseline.read_text())["streaming_replay"]
    fresh = json.loads(args.fresh.read_text())["streaming_replay"]
    if baseline.get("scale") != fresh.get("scale"):
        print(
            f"scale mismatch: baseline {baseline.get('scale')} vs "
            f"fresh {fresh.get('scale')} — speedups are not comparable"
        )
        return 1

    parity = fresh.get("parity")
    if parity is not None:
        print(
            f"parity: {parity['checked']} vectors checked, "
            f"{parity['mismatches']} mismatches"
        )
        if parity["mismatches"]:
            print("streamed features diverged from transform_one")
            return 1

    if "engines_match" in fresh and fresh["engines_match"] is not True:
        print("batched replay kernels diverged from the per_event reference")
        return 1

    old = float(baseline["speedup"])
    new = float(fresh["speedup"])
    drop = (old - new) / old
    status = "FAIL" if drop > args.tolerance else "ok"
    print(
        f"streaming replay: baseline {old:.2f}x fresh {new:.2f}x "
        f"drop {drop:+.1%} [{status}]"
    )
    if drop > args.tolerance:
        print(f"streaming speedup regressed > {args.tolerance:.0%}")
        return 1
    print("streaming speedup within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
